package model

import (
	"context"
	"fmt"

	"repro/internal/schedule"
)

// CheckOpts configures an exploration.
type CheckOpts struct {
	// Ctx, when non-nil, cancels the exploration: Check polls it
	// periodically during the BFS and returns ctx.Err() once it is done.
	Ctx context.Context
	// Inputs is the binary input of each process.
	Inputs []int
	// CrashQuota[p] is the maximum number of crashes of process p. A nil
	// slice means crash-free exploration. Note the paper's E sets always
	// keep p0 crash-free; callers model that by setting CrashQuota[0]=0.
	CrashQuota []int
	// Validity overrides the validity predicate for decided values. If
	// nil, the consensus default is used: a decided value must equal the
	// input of some process.
	Validity func(decided int) bool
	// MaxNodes aborts exploration when the state space exceeds the bound
	// (0 means the default of 2,000,000).
	MaxNodes int
	// SkipLiveness disables the recoverable wait-freedom (cycle) check.
	SkipLiveness bool
	// StartTrace, when nonempty, is applied to the initial configuration
	// before exploration begins: the explored root is the configuration
	// (and persistent output history) reached by this schedule. Crashes
	// inside StartTrace do NOT consume the exploration's crash quota —
	// each Check call gets a fresh budget, mirroring the per-stage
	// re-derivation in the Theorem 13 chain construction.
	StartTrace schedule.Schedule
}

// Violation describes one property violation found by the checker.
type Violation struct {
	// Kind is "agreement", "validity", or "wait-freedom".
	Kind string
	// Trace is a schedule from the initial configuration exhibiting the
	// violation (for wait-freedom, a path to the start of a cycle).
	Trace schedule.Schedule
	// Config is the violating configuration.
	Config Config
	// Detail is a human-readable explanation.
	Detail string
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s violation after [%s]: %s", v.Kind, v.Trace, v.Detail)
}

// Result is the outcome of an exploration.
type Result struct {
	pr     Protocol
	inputs []int
	// g is the shared exploration graph the walk ran on; post-exploration
	// analyses (Node, valency, critical search) resolve canonical nodes
	// through it.
	g *Graph

	// Nodes is the number of distinct (configuration, crash-usage) nodes
	// visited.
	Nodes int
	// Violations lists all property violations found (deduplicated by
	// kind; the checker records the first witness of each kind).
	Violations []*Violation
	// Truncated reports whether exploration hit MaxNodes.
	Truncated bool

	// nodes indexes this walk's nodes by their canonical graph node; the
	// small per-bucket entries are told apart by crash-usage vector, so
	// the walk's dedup identity is exactly the serial checker's
	// (configuration, crash-usage, output-history) triple. The first
	// entry per canonical node is inlined: crash-free walks (one usage
	// vector per node) never allocate a bucket slice.
	nodes walkIndex
	count int
	// order lists the nodes in BFS discovery order (init first), making
	// post-exploration passes — in particular the liveness DFS sweep —
	// deterministic instead of map-ordered.
	order []*node
	init  *node
	// arena batch-allocates walk nodes and usedArena their crash-usage
	// vectors (they live and die with the Result, so chunked allocation
	// is safe and cheap). arenaHint shrinks the FIRST chunk below the
	// 512-node default when the graph is small (its canonical node
	// count), so a tiny walk over a tiny graph does not allocate a
	// 512-node block; larger walks use default-size chunks — a budgeted
	// or quota-restricted walk may visit only a slice of a big cached
	// graph, so the hint is a cap on waste, not a preallocation target.
	arena     []node
	arenaHint int
	usedArena []int
	valences  map[*node]int
}

// OK reports whether the exploration completed without violations.
func (r *Result) OK() bool { return len(r.Violations) == 0 && !r.Truncated }

type node struct {
	cfg  Config
	used []int // crashes used per process
	// outs[p] is the first value process p ever output along this path
	// (-1 if none). Outputs survive crashes in the paper's model: a
	// process that decided, crashed and re-decided differently violates
	// agreement even though its local decided state was erased.
	outs   []int8
	parent *node
	via    schedule.Event
	// ord is the node's BFS discovery index (position in Result.order),
	// letting post-exploration sweeps keep per-node state in flat
	// ord-indexed slices instead of maps.
	ord int32
	// succ caches step successors (crash successors are recomputed).
	succ []*node
	// gn is the node's canonical twin in the shared exploration graph
	// the walk ran on (see Graph); it carries the precomputed decision
	// vector, packed-identity hash, and successor set.
	gn *gnode
}

// wentry is one walk-index slot: a canonical graph node and its walk
// twins. The common case of a single crash-usage vector stays inline in
// first; further vectors overflow into rest.
type wentry struct {
	gn    *gnode
	first *node
	rest  []*node
}

// walkIndex is the per-walk dedup index: an open-addressed table from
// canonical graph node to this walk's (node, crash-usage) twins. It
// probes with the gnode's precomputed packed-identity hash (linear
// probing, power-of-two capacity, grown at 3/4 load) and compares slot
// identity by gnode pointer, so a walk lookup is a few pointer probes
// with no hashing work at all. The table lives and dies with its Result
// (post-exploration analyses keep using it), so unlike the frontier and
// sweep scratch it is not pooled.
type walkIndex struct {
	tab  []wentry
	live int
}

// init sizes the table so hint entries fit under 3/4 load.
func (w *walkIndex) init(hint int) {
	capacity := 16
	for capacity*3 < hint*4 {
		capacity <<= 1
	}
	w.tab = make([]wentry, capacity)
	w.live = 0
}

// slot returns the entry for gn, or the empty slot where it would be
// inserted.
func (w *walkIndex) slot(gn *gnode) *wentry {
	mask := uint64(len(w.tab) - 1)
	for i := gn.hash & mask; ; i = (i + 1) & mask {
		e := &w.tab[i]
		if e.gn == gn || e.gn == nil {
			return e
		}
	}
}

func (w *walkIndex) grow() {
	old := w.tab
	next := make([]wentry, len(old)*2)
	mask := uint64(len(next) - 1)
	for i := range old {
		e := &old[i]
		if e.gn == nil {
			continue
		}
		j := e.gn.hash & mask
		for next[j].gn != nil {
			j = (j + 1) & mask
		}
		next[j] = *e
	}
	w.tab = next
}

// add registers nd in the walk's dedup index and discovery order.
func (r *Result) add(nd *node) {
	w := &r.nodes
	e := w.slot(nd.gn)
	if e.gn == nil {
		if (w.live+1)*4 >= len(w.tab)*3 {
			w.grow()
			e = w.slot(nd.gn)
		}
		e.gn = nd.gn
		e.first = nd
		w.live++
	} else {
		e.rest = append(e.rest, nd)
	}
	nd.ord = int32(r.count)
	r.order = append(r.order, nd)
	r.count++
}

// lookup finds this walk's node for (gn, used), or nil. A nil gn (a
// schedule that leaves the explored graph) finds nothing.
func (r *Result) lookup(gn *gnode, used []int) *node {
	if gn == nil {
		return nil
	}
	e := r.nodes.slot(gn)
	if e.gn == nil {
		return nil
	}
	if eqUsed(e.first.used, used) {
		return e.first
	}
	for _, nd := range e.rest {
		if eqUsed(nd.used, used) {
			return nd
		}
	}
	return nil
}

// lookupPlus finds this walk's node for (gn, base with base[p]+1) without
// materializing the incremented usage vector.
func (r *Result) lookupPlus(gn *gnode, base []int, p int) *node {
	if gn == nil {
		return nil
	}
	e := r.nodes.slot(gn)
	if e.gn == nil {
		return nil
	}
	if eqUsedPlus(e.first.used, base, p) {
		return e.first
	}
	for _, nd := range e.rest {
		if eqUsedPlus(nd.used, base, p) {
			return nd
		}
	}
	return nil
}

// newNode hands out the next arena slot. The first chunk is
// min(arenaHint, 512) — see arenaHint — and later chunks the default.
func (r *Result) newNode() *node {
	if len(r.arena) == 0 {
		size := 512
		if r.arenaHint > 0 {
			if r.arenaHint < size {
				size = r.arenaHint
			}
			r.arenaHint = 0
		}
		r.arena = make([]node, size)
	}
	nd := &r.arena[0]
	r.arena = r.arena[1:]
	return nd
}

// newUsed hands out an n-length crash-usage vector from the arena (full
// capacity slice, so an append could never bleed into a neighbor).
func (r *Result) newUsed(n int) []int {
	if len(r.usedArena) < n {
		r.usedArena = make([]int, 512*n)
	}
	u := r.usedArena[:n:n]
	r.usedArena = r.usedArena[n:]
	return u
}

func eqUsed(a, b []int) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// eqUsedPlus reports a == base except a[p] == base[p]+1.
func eqUsedPlus(a, base []int, p int) bool {
	for i, v := range a {
		want := base[i]
		if i == p {
			want++
		}
		if v != want {
			return false
		}
	}
	return true
}

// freshOuts returns an all-undecided output vector.
func freshOuts(n int) []int8 {
	outs := make([]int8, n)
	for i := range outs {
		outs[i] = -1
	}
	return outs
}

// mergeOuts extends a path's output history with the decisions visible in
// cfg, returning outs unchanged (same slice) if nothing new was decided.
func mergeOuts(pr Protocol, cfg Config, outs []int8) []int8 {
	var copied []int8
	for p := range cfg.States {
		if v, ok := Decision(pr, cfg, p); ok && outs[p] == -1 {
			if copied == nil {
				copied = make([]int8, len(outs))
				copy(copied, outs)
			}
			copied[p] = int8(v)
		}
	}
	if copied == nil {
		return outs
	}
	return copied
}

// trace reconstructs the schedule from the initial node.
func (n *node) trace() schedule.Schedule {
	var rev []schedule.Event
	for cur := n; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make(schedule.Schedule, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Check explores the protocol's reachable state space under the given
// options and verifies agreement, validity and recoverable wait-freedom.
// It runs on a one-shot shared exploration graph; batch callers that
// construct a Graph once and Check it many times amortize the state-space
// expansion across requests while getting results identical to this
// function (there is exactly one exploration code path — Graph.Check).
func Check(pr Protocol, opts CheckOpts) (*Result, error) {
	g, err := NewGraph(pr, opts.Inputs)
	if err != nil {
		return nil, err
	}
	return g.Check(opts)
}

// walkState is one Check call's property-checking state: the validity
// predicate, the per-kind first-witness dedup, and the violation sink.
// It replaces the per-walk report/checkSafety closures and seen-kind map
// with a stack value, so a clean walk records violations for free.
type walkState struct {
	r        *Result
	validity func(int) bool
	inputs   []int
	// seen[k] dedups violations per kind (0 agreement, 1 validity,
	// 2 wait-freedom): the checker records the first witness of each.
	seen [3]bool
}

const (
	kindAgreement = iota
	kindValidity
	kindWaitFreedom
)

// valid applies the walk's validity predicate; the consensus default —
// a decided value must equal some process's input — is evaluated
// directly against the input vector, with no closure.
func (w *walkState) valid(d int) bool {
	if w.validity != nil {
		return w.validity(d)
	}
	for _, in := range w.inputs {
		if d == in {
			return true
		}
	}
	return false
}

var kindNames = [3]string{"agreement", "validity", "wait-freedom"}

func (w *walkState) report(kind int, nd *node, detail string) {
	if w.seen[kind] {
		return
	}
	w.seen[kind] = true
	w.r.Violations = append(w.r.Violations, &Violation{
		Kind: kindNames[kind], Trace: nd.trace(), Config: nd.cfg, Detail: detail,
	})
}

// checkSafety verifies agreement and validity over the path's output
// history (parentOuts) extended by the decisions visible in nd's
// configuration, read from the node's precomputed decision vector.
// Outputs persist across crashes: a process that decided, crashed and
// re-decided a different value is an agreement violation with its own
// earlier output.
func (w *walkState) checkSafety(nd *node, parentOuts []int8) {
	n := len(parentOuts)
	for p := 0; p < n; p++ {
		if v := nd.gn.decided[p]; v >= 0 {
			if prev := parentOuts[p]; prev >= 0 && prev != v {
				w.report(kindAgreement, nd, fmt.Sprintf(
					"p%d output %d, crashed, and re-decided %d", p, prev, v))
			}
		}
	}
	first, firstP := -1, -1
	for p := 0; p < n; p++ {
		v := nd.outs[p]
		if v < 0 {
			continue
		}
		if !w.valid(int(v)) {
			w.report(kindValidity, nd, fmt.Sprintf(
				"p%d decided %d, not an input of any process", p, v))
		}
		if first == -1 {
			first, firstP = int(v), p
		} else if int(v) != first {
			w.report(kindAgreement, nd, fmt.Sprintf(
				"p%d decided %d but p%d decided %d", firstP, first, p, v))
		}
	}
}

// sweepFrame is one liveness-DFS stack frame.
type sweepFrame struct {
	nd  *node
	idx int
}

// sweepScratch is the pooled liveness-DFS working set: per-node colors
// (indexed by node.ord) and the explicit DFS stack. Pooled on the graph
// (Graph.postSweep) because, unlike the Result, it dies with the Check
// call.
type sweepScratch struct {
	color []uint8
	stack []sweepFrame
}

func (g *Graph) getSweep(n int) *sweepScratch {
	sc, _ := g.postSweep.Get().(*sweepScratch)
	if sc == nil {
		sc = &sweepScratch{}
	}
	if cap(sc.color) < n {
		sc.color = make([]uint8, n)
	} else {
		sc.color = sc.color[:n]
		clear(sc.color)
	}
	return sc
}

func (g *Graph) putSweep(sc *sweepScratch) {
	// Drop the stack's node pointers so pooling never retains a finished
	// walk's Result.
	clear(sc.stack[:cap(sc.stack)])
	sc.stack = sc.stack[:0]
	g.postSweep.Put(sc)
}

// checkLiveness detects recoverable wait-freedom violations: a cycle in
// the step-successor graph means the adversary can schedule some process to
// take infinitely many steps without crashing and without deciding (crash
// edges strictly consume quota, so no cycle contains a crash). Start nodes
// are swept in BFS discovery order, so the reported witness is
// deterministic for a given exploration.
func (r *Result) checkLiveness(w *walkState) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	sc := r.g.getSweep(r.count)
	defer r.g.putSweep(sc)
	color := sc.color
	// Iterative DFS to avoid deep recursion on long chains.
	stack := sc.stack[:0]
	for _, start := range r.order {
		if color[start.ord] != white {
			continue
		}
		stack = append(stack[:0], sweepFrame{nd: start})
		color[start.ord] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(f.nd.succ) {
				child := f.nd.succ[f.idx]
				f.idx++
				switch color[child.ord] {
				case white:
					color[child.ord] = gray
					stack = append(stack, sweepFrame{nd: child})
				case gray:
					sc.stack = stack
					w.report(kindWaitFreedom, child, fmt.Sprintf(
						"cycle of crash-free steps through %s: some process runs forever without deciding",
						child.cfg))
					return
				}
				continue
			}
			color[f.nd.ord] = black
			stack = stack[:len(stack)-1]
		}
	}
	sc.stack = stack
}

// ReachableDecisions returns the set of values decided in configurations
// reachable from the node identified by applying sigma to the initial
// configuration (respecting remaining crash quota), as a sorted slice.
// It is the engine behind valency computations.
func (r *Result) ReachableDecisions(start *node) map[int]bool {
	out := make(map[int]bool)
	seen := map[*node]bool{start: true}
	stack := []*node{start}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := 0; p < r.pr.Procs(); p++ {
			if v, ok := Decision(r.pr, nd.cfg, p); ok {
				out[v] = true
			}
		}
		for _, child := range r.allSucc(nd) {
			if !seen[child] {
				seen[child] = true
				stack = append(stack, child)
			}
		}
	}
	return out
}

// allSucc returns step and crash successors of nd that exist in the
// explored graph. Visited nodes were expanded during the walk, so the
// canonical crash successors are read lock-free off the graph node — no
// CrashProc recomputation, no shared-graph mutex in the valency and
// liveness sweeps. Nodes left unexpanded by a truncated walk fall back
// to the locked lookup (FindCritical refuses truncated results anyway).
func (r *Result) allSucc(nd *node) []*node {
	out := append([]*node(nil), nd.succ...)
	if nd.gn.done.Load() {
		for p, cg := range nd.gn.crashSucc {
			if cg == nil {
				continue
			}
			if child := r.lookupPlus(cg, nd.used, p); child != nil {
				out = append(out, child)
			}
		}
		return out
	}
	for p := 0; p < r.pr.Procs(); p++ {
		next := CrashProc(r.pr, nd.cfg, p, r.inputs[p])
		if child := r.lookupPlus(r.g.find(next, nd.outs), nd.used, p); child != nil {
			out = append(out, child)
		}
	}
	return out
}

// Node looks up the explored node reached by a schedule from the initial
// configuration, or nil if the schedule leaves the explored graph.
func (r *Result) Node(sigma schedule.Schedule) *node {
	cfg := InitialConfig(r.pr, r.inputs)
	used := make([]int, r.pr.Procs())
	outs := mergeOuts(r.pr, cfg, freshOuts(r.pr.Procs()))
	for _, e := range sigma {
		if e.Crash {
			cfg = CrashProc(r.pr, cfg, e.P, r.inputs[e.P])
			used2 := make([]int, len(used))
			copy(used2, used)
			used2[e.P]++
			used = used2
		} else {
			cfg = Step(r.pr, cfg, e.P)
			outs = mergeOuts(r.pr, cfg, outs)
		}
	}
	return r.lookup(r.g.find(cfg, outs), used)
}

// InitNode returns the initial node of the exploration.
func (r *Result) InitNode() *node { return r.init }

// NodeConfig exposes a node's configuration (for tests and reports).
func NodeConfig(nd *node) Config { return nd.cfg }
