package model_test

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/spec"
)

// renamed wraps a protocol, renaming every local state and the protocol
// itself while preserving the dynamics exactly. Structurally it is the
// same protocol; nominally it shares nothing.
type renamed struct{ inner model.Protocol }

func (r renamed) Name() string { return "renamed:" + r.inner.Name() }
func (r renamed) Procs() int   { return r.inner.Procs() }
func (r renamed) Objects() []model.ObjectSpec {
	return r.inner.Objects()
}
func (r renamed) Init(p, input int) string { return "X" + r.inner.Init(p, input) }
func (r renamed) Poised(p int, state string) model.Action {
	return r.inner.Poised(p, strings.TrimPrefix(state, "X"))
}
func (r renamed) Next(p int, state string, resp spec.Response) string {
	return "X" + r.inner.Next(p, strings.TrimPrefix(state, "X"), resp)
}

func TestFingerprintIgnoresNames(t *testing.T) {
	for _, pr := range []model.Protocol{
		proto.NewCASRecoverable(2),
		proto.NewTnnWaitFree(3, 2, 3),
		proto.NewTASConsensus(),
	} {
		fp, err := model.Fingerprint(pr)
		if err != nil {
			t.Fatalf("%s: %v", pr.Name(), err)
		}
		if len(fp) != 64 {
			t.Fatalf("%s: fingerprint %q is not 64 hex chars", pr.Name(), fp)
		}
		fp2, err := model.Fingerprint(renamed{pr})
		if err != nil {
			t.Fatalf("renamed %s: %v", pr.Name(), err)
		}
		if fp != fp2 {
			t.Fatalf("%s: renaming states changed the fingerprint: %s vs %s", pr.Name(), fp, fp2)
		}
	}
}

func TestFingerprintSeparatesStructure(t *testing.T) {
	fps := make(map[string]string)
	for _, pr := range []model.Protocol{
		proto.NewCASWaitFree(2),
		proto.NewCASWaitFree(3),
		proto.NewCASRecoverable(2),
		proto.NewTnnWaitFree(3, 2, 3),
		proto.NewTnnWaitFree(4, 2, 4),
		proto.NewTnnRecoverable(3, 2, 2),
		proto.NewTASConsensus(),
	} {
		fp, err := model.Fingerprint(pr)
		if err != nil {
			t.Fatalf("%s: %v", pr.Name(), err)
		}
		if prev, dup := fps[fp]; dup {
			t.Fatalf("distinct protocols %s and %s share fingerprint %s", prev, pr.Name(), fp)
		}
		fps[fp] = pr.Name()
	}
}

// TestFingerprintSharesBehavioralTwins documents the deliberate upside
// of structural identity: tnn-wf over T(3,2) and over T(3,1) never apply
// opR — the only operation n' affects — so they are behaviorally
// identical and share a fingerprint (and therefore a cached graph),
// which a Name-keyed cache could never discover.
func TestFingerprintSharesBehavioralTwins(t *testing.T) {
	a, err := model.Fingerprint(proto.NewTnnWaitFree(3, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.Fingerprint(proto.NewTnnWaitFree(3, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("behaviorally identical protocols fingerprint differently: %s vs %s", a, b)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	a, err := model.Fingerprint(proto.NewTnnRecoverable(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.Fingerprint(proto.NewTnnRecoverable(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two builds of one protocol fingerprint differently: %s vs %s", a, b)
	}
}

// unbounded is a protocol whose local-state namespace grows without
// bound, exercising the fingerprint state budget.
type unbounded struct{ model.Protocol }

func newUnbounded() unbounded { return unbounded{proto.NewCASWaitFree(2)} }

func (u unbounded) Poised(p int, state string) model.Action {
	return model.Apply(0, 0)
}
func (u unbounded) Next(p int, state string, resp spec.Response) string {
	return state + "x"
}

func TestFingerprintStateBudget(t *testing.T) {
	if _, err := model.Fingerprint(newUnbounded()); err == nil {
		t.Fatal("unbounded protocol fingerprinted without error")
	}
}
