package model_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/schedule"
	"repro/internal/spec"
	"repro/internal/types"
)

// checkObservables projects a Result onto its caller-observable fields,
// the byte-identity contract between serial and shared-graph checks.
type checkObservables struct {
	Nodes      int
	Truncated  bool
	Violations []violationObservable
}

type violationObservable struct {
	Kind   string
	Trace  string
	Config string
	Detail string
}

func observablesOf(r *model.Result) checkObservables {
	out := checkObservables{Nodes: r.Nodes, Truncated: r.Truncated}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations, violationObservable{
			Kind: v.Kind, Trace: v.Trace.String(), Config: v.Config.String(), Detail: v.Detail,
		})
	}
	return out
}

// graphCheckCases spans crash-free and crash-budgeted exploration, clean
// protocols and ones with safety violations under crashes (TAS).
func graphCheckCases() []struct {
	name   string
	pr     model.Protocol
	inputs []int
	quotas [][]int
} {
	return []struct {
		name   string
		pr     model.Protocol
		inputs []int
		quotas [][]int
	}{
		{
			name: "cas-wf-2", pr: proto.NewCASWaitFree(2), inputs: []int{0, 1},
			quotas: [][]int{nil, {0, 1}, {1, 1}, {2, 2}},
		},
		{
			name: "tnn-rec-3-2-2", pr: proto.NewTnnRecoverable(3, 2, 2), inputs: []int{0, 1},
			quotas: [][]int{nil, {0, 1}, {1, 1}, {0, 2}},
		},
		{
			name: "tas-registers", pr: proto.NewTASConsensus(), inputs: []int{0, 1},
			quotas: [][]int{nil, {0, 1}, {1, 1}},
		},
	}
}

// TestGraphCheckMatchesSerial shares one Graph across every quota variant
// and across repeated runs, and requires the results to be identical to a
// fresh serial Check of the same options.
func TestGraphCheckMatchesSerial(t *testing.T) {
	for _, tc := range graphCheckCases() {
		t.Run(tc.name, func(t *testing.T) {
			g, err := model.NewGraph(tc.pr, tc.inputs)
			if err != nil {
				t.Fatal(err)
			}
			for _, quota := range tc.quotas {
				opts := model.CheckOpts{Inputs: tc.inputs, CrashQuota: quota}
				want, err := model.Check(tc.pr, opts)
				if err != nil {
					t.Fatal(err)
				}
				for run := 0; run < 2; run++ {
					got, err := g.Check(opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(observablesOf(got), observablesOf(want)) {
						t.Fatalf("quota %v run %d: shared-graph result diverged:\n got %+v\nwant %+v",
							quota, run, observablesOf(got), observablesOf(want))
					}
				}
			}
			st := g.Stats()
			if st.Expanded == 0 || st.Reused == 0 {
				t.Fatalf("expected both expansions and reuse, got %+v", st)
			}
		})
	}
}

// TestGraphCheckConcurrent hammers one shared graph from many goroutines
// with mixed quotas; every result must match its serial twin. Run under
// -race this is the shared-graph data-race check.
func TestGraphCheckConcurrent(t *testing.T) {
	for _, tc := range graphCheckCases() {
		t.Run(tc.name, func(t *testing.T) {
			g, err := model.NewGraph(tc.pr, tc.inputs)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]checkObservables, len(tc.quotas))
			for i, quota := range tc.quotas {
				r, err := model.Check(tc.pr, model.CheckOpts{Inputs: tc.inputs, CrashQuota: quota})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = observablesOf(r)
			}
			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i, quota := range tc.quotas {
						got, err := g.Check(model.CheckOpts{Inputs: tc.inputs, CrashQuota: quota})
						if err != nil {
							errs <- err
							return
						}
						if !reflect.DeepEqual(observablesOf(got), want[i]) {
							errs <- fmt.Errorf("worker %d quota %v: diverged", w, quota)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if st := g.Stats(); st.Reused == 0 {
				t.Fatalf("concurrent walks reused nothing: %+v", st)
			}
		})
	}
}

// TestGraphSharedPrefixExpandedOnce checks the tentpole's core claim: N
// identical requests expand the state space exactly once.
func TestGraphSharedPrefixExpandedOnce(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	in := []int{0, 1}
	g, err := model.NewGraph(pr, in)
	if err != nil {
		t.Fatal(err)
	}
	opts := model.CheckOpts{Inputs: in, CrashQuota: []int{1, 1}}
	var first model.GraphStats
	for i := 0; i < 5; i++ {
		if _, err := g.Check(opts); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = g.Stats()
		}
	}
	st := g.Stats()
	if st.Expanded != first.Expanded {
		t.Fatalf("later identical requests expanded new nodes: first %+v, final %+v", first, st)
	}
	if st.Reused < 4*first.Expanded {
		t.Fatalf("expected ~4 full reuse passes, got %+v (first expanded %d)", st, first.Expanded)
	}
}

// TestGraphInputMismatch rejects a walk whose inputs differ from the
// graph's.
func TestGraphInputMismatch(t *testing.T) {
	g, err := model.NewGraph(proto.NewCASWaitFree(2), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Check(model.CheckOpts{Inputs: []int{1, 0}}); err == nil {
		t.Fatal("expected an inputs-mismatch error")
	}
	if _, err := g.Check(model.CheckOpts{Inputs: []int{0}}); err == nil {
		t.Fatal("expected an inputs-length error")
	}
}

// TestGraphCheckCancel verifies a canceled walk context stops the walk
// without corrupting the shared graph for later walks.
func TestGraphCheckCancel(t *testing.T) {
	pr := proto.NewCASRecoverable(2)
	in := []int{0, 1}
	g, err := model.NewGraph(pr, in)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Check(model.CheckOpts{Ctx: ctx, Inputs: in, CrashQuota: []int{1, 1}}); err == nil {
		t.Fatal("expected context error")
	}
	want, err := model.Check(pr, model.CheckOpts{Inputs: in, CrashQuota: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Check(model.CheckOpts{Inputs: in, CrashQuota: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observablesOf(got), observablesOf(want)) {
		t.Fatal("post-cancel walk diverged from serial")
	}
}

// TestGraphStartTraceRoot checks StartTrace roots resolve through the
// graph identically to serial exploration.
func TestGraphStartTraceRoot(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	in := []int{0, 1}
	start := schedule.Schedule{schedule.Step(0), schedule.Crash(0), schedule.Step(1)}
	g, err := model.NewGraph(pr, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Check(pr, model.CheckOpts{Inputs: in, CrashQuota: []int{1, 1}, StartTrace: start})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Check(model.CheckOpts{Inputs: in, CrashQuota: []int{1, 1}, StartTrace: start})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observablesOf(got), observablesOf(want)) {
		t.Fatal("StartTrace walk diverged from serial")
	}
}

// spinProto is a one-process protocol that reads a register forever
// without deciding: a crash-free step cycle, i.e. a deterministic
// recoverable wait-freedom violation.
type spinProto struct {
	reg *spec.FiniteType
}

func newSpinProto() *spinProto { return &spinProto{reg: types.Register(2)} }

func (s *spinProto) Name() string { return "spin" }
func (s *spinProto) Procs() int   { return 1 }
func (s *spinProto) Objects() []model.ObjectSpec {
	return []model.ObjectSpec{{Type: s.reg, Init: 0}}
}
func (s *spinProto) Init(p, input int) string { return "a" }
func (s *spinProto) Poised(p int, state string) model.Action {
	return model.Apply(0, 0)
}
func (s *spinProto) Next(p int, state string, resp spec.Response) string {
	if state == "a" {
		return "b"
	}
	return "a"
}

// TestGraphCheckDeterministicLiveness runs a liveness-violating check
// repeatedly and requires the same witness every time (the BFS-order
// sweep removed the old map-order nondeterminism).
func TestGraphCheckDeterministicLiveness(t *testing.T) {
	pr := newSpinProto()
	var first checkObservables
	for i := 0; i < 5; i++ {
		r, err := model.Check(pr, model.CheckOpts{Inputs: []int{0}})
		if err != nil {
			t.Fatal(err)
		}
		obs := observablesOf(r)
		found := false
		for _, v := range obs.Violations {
			if v.Kind == "wait-freedom" {
				found = true
			}
		}
		if !found {
			t.Fatalf("run %d: expected a wait-freedom violation, got %+v", i, obs)
		}
		if i == 0 {
			first = obs
		} else if !reflect.DeepEqual(obs, first) {
			t.Fatalf("run %d: liveness witness not deterministic:\n got %+v\nwant %+v", i, obs, first)
		}
	}
}
