package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/spec"
)

// FingerprintStateBudget bounds the per-process reachable-state closure a
// Fingerprint computation will enumerate. Protocols in this repository
// have a handful of local states per process; the budget exists so a
// buggy or adversarial Protocol implementation with an unbounded state
// namespace fails with an error instead of hanging the fingerprinter.
const FingerprintStateBudget = 1 << 14

// Fingerprint computes the structural fingerprint of a protocol: a
// canonical SHA-256 hash (64 hex characters) of the reachable joint
// state machine. Two protocols share a fingerprint exactly when they are
// behaviorally identical:
//
//   - the same process count and the same shared-object shapes (value
//     count and initial value index per object), and
//   - for every process, the same canonical local state machine — the
//     closure of the initial states (one per consensus input) under
//     "apply the poised operation with the object at any of its values",
//     recording for each (state, object value) the successor object
//     value and successor local state.
//
// Everything nominal is deliberately excluded: Protocol.Name, local
// state strings, type/value/operation names and response integers all
// drop out. Local states are renamed to BFS discovery indices (with
// successors visited in ascending object-value order), so a registry
// protocol and a hand-submitted descriptor compilation with different
// state names — but identical dynamics — fingerprint equal, while any
// behavioral difference (one transition, one initial value) changes the
// hash. This is what makes the fingerprint safe as a cache identity for
// exploration graphs: unlike Name, it cannot alias two protocols that
// would expand different state spaces.
//
// The closure deliberately over-approximates reachability: it considers
// the poised operation against every value of the object's type, not
// only values arising in real executions, so it is a pure function of
// the protocol's structure and never depends on scheduling. Protocols
// whose closure exceeds FingerprintStateBudget states for one process
// return an error.
func Fingerprint(pr Protocol) (string, error) {
	if err := Validate(pr); err != nil {
		return "", err
	}
	h := sha256.New()
	wInt := func(v int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	objs := pr.Objects()
	wInt(pr.Procs())
	wInt(len(objs))
	for _, o := range objs {
		wInt(o.Type.NumValues())
		wInt(int(o.Init))
	}
	for p := 0; p < pr.Procs(); p++ {
		m, err := localMachine(pr, p)
		if err != nil {
			return "", err
		}
		wInt(len(m.states))
		// Roots: the canonical ids of Init(p, 0) and Init(p, 1).
		wInt(m.id[pr.Init(p, 0)])
		wInt(m.id[pr.Init(p, 1)])
		for _, st := range m.states {
			a := pr.Poised(p, st)
			if a.Decided {
				wInt(1)
				wInt(a.Decision)
				continue
			}
			wInt(0)
			wInt(a.Obj)
			t := objs[a.Obj].Type
			for v := 0; v < t.NumValues(); v++ {
				e := t.Apply(spec.Value(v), a.Op)
				wInt(int(e.Next))
				wInt(m.id[pr.Next(p, st, e.Resp)])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// localStates is the canonical local state machine of one process: the
// reachable states in BFS discovery order plus their canonical ids.
type localStates struct {
	states []string
	id     map[string]int
}

// localMachine computes process p's reachable local-state closure under
// the all-object-values over-approximation, assigning canonical BFS ids.
// Successor states are discovered in ascending object-value order, so the
// numbering is a pure function of the protocol's structure.
func localMachine(pr Protocol, p int) (localStates, error) {
	m := localStates{id: make(map[string]int)}
	objs := pr.Objects()
	add := func(s string) error {
		if _, ok := m.id[s]; ok {
			return nil
		}
		if len(m.states) >= FingerprintStateBudget {
			return fmt.Errorf("model: fingerprint: process %d exceeds %d reachable local states",
				p, FingerprintStateBudget)
		}
		m.id[s] = len(m.states)
		m.states = append(m.states, s)
		return nil
	}
	for input := 0; input <= 1; input++ {
		if err := add(pr.Init(p, input)); err != nil {
			return m, err
		}
	}
	for i := 0; i < len(m.states); i++ {
		st := m.states[i]
		a := pr.Poised(p, st)
		if a.Decided {
			continue
		}
		if a.Obj < 0 || a.Obj >= len(objs) {
			return m, fmt.Errorf("model: fingerprint: process %d state %q poised on object %d out of range",
				p, st, a.Obj)
		}
		t := objs[a.Obj].Type
		if int(a.Op) < 0 || int(a.Op) >= t.NumOps() {
			return m, fmt.Errorf("model: fingerprint: process %d state %q poised on op %d out of range",
				p, st, a.Op)
		}
		for v := 0; v < t.NumValues(); v++ {
			next := pr.Next(p, st, t.Apply(spec.Value(v), a.Op).Resp)
			if next == "" {
				return m, fmt.Errorf("model: fingerprint: process %d state %q transitions to the empty state", p, st)
			}
			if err := add(next); err != nil {
				return m, err
			}
		}
	}
	return m, nil
}

// ReachableStates returns process p's reachable local states under the
// same all-object-values closure Fingerprint canonicalizes, in BFS
// discovery order. It is the extraction primitive behind descriptor
// export (protodef.Describe) and exists here so the closure used for
// identity and the closure used for export can never drift apart.
func ReachableStates(pr Protocol, p int) ([]string, error) {
	m, err := localMachine(pr, p)
	if err != nil {
		return nil, err
	}
	return m.states, nil
}

// FingerprintedResponses returns, for one non-decided local state of
// process p, the set of (response, successor state) pairs the closure
// explores, deduplicated and ordered by ascending response. Export
// helpers use it to enumerate exactly the transitions the fingerprint
// commits to.
func FingerprintedResponses(pr Protocol, p int, state string) ([]RespEdge, error) {
	a := pr.Poised(p, state)
	if a.Decided {
		return nil, nil
	}
	objs := pr.Objects()
	if a.Obj < 0 || a.Obj >= len(objs) {
		return nil, fmt.Errorf("model: state %q poised on object %d out of range", state, a.Obj)
	}
	t := objs[a.Obj].Type
	seen := make(map[spec.Response]string)
	var resps []int
	for v := 0; v < t.NumValues(); v++ {
		e := t.Apply(spec.Value(v), a.Op)
		if _, ok := seen[e.Resp]; !ok {
			seen[e.Resp] = pr.Next(p, state, e.Resp)
			resps = append(resps, int(e.Resp))
		}
	}
	sort.Ints(resps)
	out := make([]RespEdge, 0, len(resps))
	for _, r := range resps {
		out = append(out, RespEdge{Resp: spec.Response(r), Next: seen[spec.Response(r)]})
	}
	return out, nil
}

// RespEdge is one (response, successor local state) transition of a
// process's local state machine.
type RespEdge struct {
	Resp spec.Response
	Next string
}
