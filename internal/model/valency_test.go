package model_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
)

// TestBivalentInitialConfiguration reproduces Observation 1: an initial
// configuration with mixed inputs is bivalent.
func TestBivalentInitialConfiguration(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Valence(res.InitNode()); v != model.Bivalent {
		t.Errorf("initial valence = %d, want bivalent", v)
	}
}

// TestUnivalentInitialConfiguration: with equal inputs, validity forces
// univalence.
func TestUnivalentInitialConfiguration(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Valence(res.InitNode()); v != model.Valence1 {
		t.Errorf("initial valence = %d, want 1-univalent", v)
	}
	if _, err := model.FindCritical(res); err == nil {
		t.Error("FindCritical should fail from a univalent initial configuration")
	}
}

// TestCriticalExecutionCAS is Experiment E6 on the CAS protocol: a critical
// execution exists, every process is poised on the same object (Lemma 9),
// both teams are nonempty (Lemma 7), and the configuration classifies as
// n-recording (CAS records the first mover forever, so the U sets are
// disjoint and the initial value is unreachable).
func TestCriticalExecutionCAS(t *testing.T) {
	for n := 2; n <= 3; n++ {
		pr := proto.NewCASWaitFree(n)
		inputs := make([]int, n)
		inputs[0] = 0
		for p := 1; p < n; p++ {
			inputs[p] = 1
		}
		res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
		if err != nil {
			t.Fatal(err)
		}
		info, err := model.FindCritical(res)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Lemma 7: both teams nonempty.
		has := [2]bool{}
		for _, team := range info.Teams {
			has[team] = true
		}
		if !has[0] || !has[1] {
			t.Errorf("n=%d: teams %v — Lemma 7 violated", n, info.Teams)
		}
		// CAS never collides and never hides: the critical configuration
		// must be n-recording.
		if info.Class != "n-recording" {
			t.Errorf("n=%d: critical configuration classified %q, want n-recording", n, info.Class)
		}
		// For the fresh CAS protocol the critical execution is empty (the
		// very first CAS decides the winner) — the initial configuration
		// is critical.
		if len(info.Trace) != 0 {
			t.Logf("n=%d: critical execution %s (non-empty is acceptable)", n, info.Trace)
		}
	}
}

// TestCriticalExecutionTnn runs the critical search on the paper's own
// wait-free protocol over T_{n,n'}: again both teams must be nonempty and
// all processes poised on the single object.
func TestCriticalExecutionTnn(t *testing.T) {
	for _, c := range []struct{ n, np int }{{2, 1}, {3, 2}, {4, 2}} {
		pr := proto.NewTnnWaitFree(c.n, c.np, c.n)
		inputs := make([]int, c.n)
		for p := range inputs {
			inputs[p] = p % 2
		}
		res, err := model.Check(pr, model.CheckOpts{Inputs: inputs})
		if err != nil {
			t.Fatal(err)
		}
		info, err := model.FindCritical(res)
		if err != nil {
			t.Fatalf("T[%d,%d]: %v", c.n, c.np, err)
		}
		if info.Object != 0 {
			t.Errorf("T[%d,%d]: poised object = %d, want 0", c.n, c.np, info.Object)
		}
		has := [2]bool{}
		for _, team := range info.Teams {
			has[team] = true
		}
		if !has[0] || !has[1] {
			t.Errorf("T[%d,%d]: teams %v — Lemma 7 violated", c.n, c.np, info.Teams)
		}
		// With n processes the full schedule drives the object to s_bot
		// regardless of which team moved first, so U_0 and U_1 intersect
		// at s_bot: the critical configuration COLLIDES. This matches the
		// record decider (T_{n,n'} is (n-1)-recording but not
		// n-recording) and is precisely why the type solves wait-free
		// consensus (collisions are disambiguated by responses) but not
		// recoverable consensus (a crashed process must re-learn the
		// winner from the value, per the paper's Theorem 13 machinery).
		if info.Class != "colliding" {
			t.Errorf("T[%d,%d]: classified %q, want colliding", c.n, c.np, info.Class)
		}
	}
}

// TestCriticalWithCrashBudget runs the critical search on the recoverable
// protocol under a crash budget, the closest engine analogue of the
// paper's E*_z-relative criticality.
func TestCriticalWithCrashBudget(t *testing.T) {
	pr := proto.NewTnnRecoverable(4, 2, 2)
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}, CrashQuota: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := model.FindCritical(res)
	if err != nil {
		t.Fatal(err)
	}
	if info.Class == "colliding" {
		t.Errorf("recoverable protocol's critical configuration collides: %+v", info)
	}
	// Replay the critical trace and confirm the configuration matches.
	replayed := model.Exec(pr, model.InitialConfig(pr, []int{0, 1}), info.Trace, []int{0, 1})
	if !replayed.Equal(info.Config) {
		t.Error("critical trace does not replay to the critical configuration")
	}
}

// TestUSetsNonEmpty sanity-checks the U sets of a critical classification:
// every nonempty schedule produces a value, so both teams' sets are
// nonempty whenever both teams exist.
func TestUSetsNonEmpty(t *testing.T) {
	pr := proto.NewCASWaitFree(2)
	res, err := model.Check(pr, model.CheckOpts{Inputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := model.FindCritical(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.U[0]) == 0 || len(info.U[1]) == 0 {
		t.Errorf("U sets should be nonempty: %v / %v", info.U[0], info.U[1])
	}
}
