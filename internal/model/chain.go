package model

import (
	"context"
	"fmt"

	"repro/internal/schedule"
)

// ChainStage is one stage of the Theorem 13 chain construction: a critical
// execution found from the stage's starting configuration, with its
// Observation 11 classification.
type ChainStage struct {
	// Start is the schedule (from the original initial configuration)
	// leading to this stage's starting configuration D_i.
	Start schedule.Schedule
	// Critical is the critical execution alpha_i found from D_i, and
	// Info its classification (so D'_i = D_i alpha_i).
	Info *CriticalInfo
}

// Chain is the result of the Theorem 13 construction: a sequence of
// stages ending, on success, in an n-recording configuration.
type Chain struct {
	Stages []ChainStage
	// Recording reports whether the final stage's configuration is
	// n-recording (the outcome Theorem 13 guarantees for correct
	// recoverable algorithms under the paper's execution sets).
	Recording bool
}

// Theorem13Chain mechanizes the proof of Theorem 13 (Figures 1 and 2):
// starting from a bivalent initial configuration, it repeatedly finds a
// critical execution, classifies the critical configuration per
// Observation 11, and applies the proof's move:
//
//   - n-recording: done — the chain ends (and the object's type is
//     n-recording, which is the theorem's conclusion);
//   - v-hiding: crash the processes on team v's forced suffix
//     (schedule lambda_k = c_k c_{k+1} ... c_{n-1} for the largest k with
//     p_k..p_{n-1} on team v) and continue from the resulting
//     configuration (Figure 2);
//   - colliding: take p_{n-1}'s step and crash it (Figure 1's
//     D_1 = D'_0 p_{n-1} c_{n-1} move) and continue.
//
// Exploration is performed with the given per-stage crash quota (the
// engine's bounded analogue of the paper's E*_1 sets). The construction
// stops after at most procs stages, mirroring the paper's bound l <= n-1.
//
// For a correct recoverable algorithm the chain is expected to end in an
// n-recording configuration; for wait-free-only algorithms it may end
// colliding (see Experiment E6), which is exactly why such algorithms are
// not crash-tolerant.
func Theorem13Chain(pr Protocol, inputs []int, quota []int) (*Chain, error) {
	return Theorem13ChainOpts(pr, inputs, quota, ChainOpts{})
}

// ChainOpts configures the Theorem 13 chain construction.
type ChainOpts struct {
	// Ctx, when non-nil, cancels the per-stage explorations.
	Ctx context.Context
	// MaxNodes bounds each stage's exploration (0 means the model
	// checker's default).
	MaxNodes int
	// OnStage, when non-nil, is invoked after each stage is classified —
	// the engine's progress hook.
	OnStage func(stage int, info *CriticalInfo)
	// Graph, when non-nil, is the shared exploration graph every stage
	// walks (it must have been built for pr and inputs, e.g. served by
	// the engine's graph cache). When nil — and FreshGraphPerStage is
	// unset — the construction builds one graph itself and shares it
	// across stages: each stage is a StartTrace-overlay walk, so an
	// L-stage chain expands the common state space once, not L times.
	Graph *Graph
	// FreshGraphPerStage restores the historical behavior of exploring
	// every stage on its own one-shot graph. It exists as the ablation
	// baseline for benchmarks and the byte-identity property tests;
	// results are identical either way, only the expansion work differs.
	// Ignored when Graph is set.
	FreshGraphPerStage bool
}

// Theorem13ChainOpts is Theorem13Chain with cancellation, a per-stage
// node budget, a stage progress hook, and shared-graph exploration: by
// default all stages walk one exploration graph (ChainOpts.Graph, or a
// private one), so the chain's overlapping per-stage state spaces are
// expanded once.
func Theorem13ChainOpts(pr Protocol, inputs []int, quota []int, o ChainOpts) (*Chain, error) {
	n := pr.Procs()
	chain := &Chain{}
	prefix := schedule.Schedule{}

	g := o.Graph
	if g == nil && !o.FreshGraphPerStage {
		var err error
		if g, err = NewGraph(pr, inputs); err != nil {
			return chain, err
		}
	}

	for stage := 0; stage <= n; stage++ {
		opts := CheckOpts{
			Ctx:          o.Ctx,
			Inputs:       inputs,
			CrashQuota:   quota,
			StartTrace:   prefix,
			MaxNodes:     o.MaxNodes,
			SkipLiveness: true,
		}
		var res *Result
		var err error
		if g != nil {
			res, err = g.Check(opts)
		} else {
			res, err = Check(pr, opts)
		}
		if err != nil {
			return chain, err
		}
		info, err := FindCritical(res)
		if err != nil {
			return chain, fmt.Errorf("stage %d: %w", stage, err)
		}
		chain.Stages = append(chain.Stages, ChainStage{Start: prefix, Info: info})
		if o.OnStage != nil {
			o.OnStage(stage, info)
		}

		switch info.Class {
		case "n-recording":
			chain.Recording = true
			return chain, nil
		case "0-hiding", "1-hiding":
			v := int(info.Class[0] - '0')
			// Find the largest suffix p_k..p_{n-1} entirely on team v and
			// crash it (lambda_k). Crashing team-v processes is the
			// Figure 2 move D_i = D'_{i-1} lambda_{n-i}.
			k := n - 1
			for k > 0 && info.Teams[k-1] == v {
				k--
			}
			if k == 0 {
				// The whole system is on one team — cannot happen at a
				// bivalent critical configuration (Lemma 7).
				return chain, fmt.Errorf("stage %d: all processes on team %d", stage, v)
			}
			lambda := schedule.Schedule{}
			for p := k; p < n; p++ {
				lambda = lambda.Append(schedule.Crash(p))
			}
			prefix = prefix.Concat(info.Trace).Concat(lambda)
		case "colliding":
			// Figure 1's move: step p_{n-1}, then crash it.
			prefix = prefix.Concat(info.Trace).
				Append(schedule.Step(n-1), schedule.Crash(n-1))
		default:
			return chain, fmt.Errorf("stage %d: unknown class %q", stage, info.Class)
		}
	}
	return chain, nil
}

// String renders the chain for reports.
func (c *Chain) String() string {
	out := ""
	for i, s := range c.Stages {
		out += fmt.Sprintf("stage %d: start=[%s] critical=[%s] class=%s teams=%v\n",
			i, s.Start, s.Info.Trace, s.Info.Class, s.Info.Teams)
	}
	if c.Recording {
		out += "chain reached an n-recording configuration (Theorem 13)\n"
	} else {
		out += "chain did not reach an n-recording configuration\n"
	}
	return out
}
