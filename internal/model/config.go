package model

import (
	"fmt"
	"strings"

	"repro/internal/schedule"
	"repro/internal/spec"
)

// Config is a configuration of a protocol execution: a local state for
// each process plus a value for each object (Section 2).
type Config struct {
	States []string
	Vals   []spec.Value
}

// InitialConfig builds the initial configuration of pr for the given input
// vector (one binary input per process).
func InitialConfig(pr Protocol, inputs []int) Config {
	n := pr.Procs()
	c := Config{States: make([]string, n), Vals: make([]spec.Value, len(pr.Objects()))}
	for p := 0; p < n; p++ {
		c.States[p] = pr.Init(p, inputs[p])
	}
	for i, o := range pr.Objects() {
		c.Vals[i] = o.Init
	}
	return c
}

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := Config{States: make([]string, len(c.States)), Vals: make([]spec.Value, len(c.Vals))}
	copy(out.States, c.States)
	copy(out.Vals, c.Vals)
	return out
}

// Equal reports whether c and d are the same configuration: identical
// local states and identical shared-object values. It replaces the
// retired string-key path (the runtime identity of a configuration is
// its packed word encoding — see Graph).
func (c Config) Equal(d Config) bool {
	if len(c.States) != len(d.States) || len(c.Vals) != len(d.Vals) {
		return false
	}
	for i, s := range c.States {
		if s != d.States[i] {
			return false
		}
	}
	for i, v := range c.Vals {
		if v != d.Vals[i] {
			return false
		}
	}
	return true
}

// IndistinguishableTo reports whether c and d are indistinguishable to
// process p (p has the same local state in both): the relation C ~_Q D of
// Section 2 restricted to a single process.
func (c Config) IndistinguishableTo(d Config, p int) bool {
	return c.States[p] == d.States[p]
}

// IndistinguishableSet returns the set of processes to which c and d are
// indistinguishable.
func (c Config) IndistinguishableSet(d Config) []int {
	var out []int
	for p := range c.States {
		if c.States[p] == d.States[p] {
			out = append(out, p)
		}
	}
	return out
}

// SameObjectValues reports whether every object has the same value in c
// and d.
func (c Config) SameObjectValues(d Config) bool {
	for i := range c.Vals {
		if c.Vals[i] != d.Vals[i] {
			return false
		}
	}
	return true
}

// Step applies one step of process p to the configuration under protocol
// pr and returns the resulting configuration. A decided process takes a
// no-op step (the configuration is returned unchanged).
func Step(pr Protocol, c Config, p int) Config {
	a := pr.Poised(p, c.States[p])
	if a.Decided {
		return c
	}
	out := c.Clone()
	obj := pr.Objects()[a.Obj]
	e := obj.Type.Apply(c.Vals[a.Obj], a.Op)
	out.Vals[a.Obj] = e.Next
	out.States[p] = pr.Next(p, c.States[p], e.Resp)
	return out
}

// CrashProc applies a crash of process p: its local state is reset to its
// initial state (which depends on its input); all objects keep their
// values.
func CrashProc(pr Protocol, c Config, p int, input int) Config {
	out := c.Clone()
	out.States[p] = pr.Init(p, input)
	return out
}

// Exec applies a schedule to a configuration: exec(C, sigma) of Section 2.
// Crash events need the process inputs to reconstruct initial states.
func Exec(pr Protocol, c Config, sigma schedule.Schedule, inputs []int) Config {
	cur := c
	for _, e := range sigma {
		if e.Crash {
			cur = CrashProc(pr, cur, e.P, inputs[e.P])
		} else {
			cur = Step(pr, cur, e.P)
		}
	}
	return cur
}

// Decision returns the decision of process p in c, if p has decided.
func Decision(pr Protocol, c Config, p int) (int, bool) {
	a := pr.Poised(p, c.States[p])
	if !a.Decided {
		return 0, false
	}
	return a.Decision, true
}

// Decisions returns the set of values decided by any process in c, as a
// bitmask over {0, 1} (bit v set iff some process has decided v). Decisions
// outside {0,1} are reported through the extra slice.
func Decisions(pr Protocol, c Config) (mask int, other []int) {
	for p := range c.States {
		if v, ok := Decision(pr, c, p); ok {
			if v == 0 || v == 1 {
				mask |= 1 << uint(v)
			} else {
				other = append(other, v)
			}
		}
	}
	return mask, other
}

// String renders the configuration compactly for traces.
func (c Config) String() string {
	var b strings.Builder
	b.WriteString("states[")
	for p, s := range c.States {
		if p > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "p%d:%s", p, s)
	}
	b.WriteString("] vals[")
	for i, v := range c.Vals {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", int(v))
	}
	b.WriteByte(']')
	return b.String()
}
