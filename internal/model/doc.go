// Package model is the valency engine: an explicit-state model checker for
// consensus protocols in the crash-recovery shared memory model of
// Section 2 of the paper.
//
// Protocols are deterministic per-process state machines over shared
// objects with finite-type sequential specifications. The checker
// exhaustively explores reachable configurations under per-process crash
// budgets, verifies agreement / validity / (recoverable) wait-freedom,
// computes bivalence and univalence of configurations, searches for
// critical executions (Lemma 6), and classifies critical configurations as
// n-recording, v-hiding, or colliding (Observation 11).
//
// # The shared exploration graph
//
// All exploration runs on a Graph: a canonicalized store of
// (configuration, output-history) nodes whose successors are computed
// exactly once, with singleflight expansion. Node identity is a packed
// fixed-width []uint64: NewGraph closes over the protocol's reachable
// state machine (the same canonical closure structural fingerprints
// walk) and assigns each reachable per-process state string a dense
// uint64 id, so a node's states, object values and output history pack
// into a handful of words — fingerprinting is a word-mix loop,
// equality is == per word, and the graph's intern index is an
// open-addressed, linear-probed table over those words (no collision
// buckets, no string hashing on the hot path). States outside the
// closure — alien imported snapshots — extend the dictionary
// copy-on-write under the graph lock. Crash usage is deliberately NOT
// part of node identity (transitions do not depend on it); each walk
// overlays its own (node, crash-usage) bookkeeping in a per-walk
// open-addressed table probed on the node's precomputed hash,
// reproducing the serial checker's (configuration, crash-usage,
// output-history) dedup exactly. Check builds a one-shot Graph; batch
// callers (engine.CheckBatch) walk one Graph per input vector,
// long-lived callers (the engine's graph cache) keep Graphs warm
// across calls, and Theorem13ChainOpts walks every chain stage over
// one Graph — all share every transition, output-merge and packing
// computation.
//
// # Concurrency and ownership
//
// A Graph is safe for concurrent use by any number of Check walks, and
// only ever grows: eviction by a caching layer merely drops a reference,
// in-flight walks finish unharmed. The intern table and the interning
// dictionary's extension path are guarded by the graph mutex (the
// dictionary itself is read lock-free through an atomic pointer);
// per-node expansion runs under a per-node once. A Result is owned by
// the caller that obtained it and is not safe for concurrent mutation;
// its lazily computed valency map means even read-style methods
// (Valence, FindCritical) must not race. Walk-internal scratch
// (frontier queues, expansion buffers, liveness sweep state) is pooled
// per graph and never escapes into Results; the walk's visited overlay
// and node arenas live in the Result and die with it.
//
// # Byte-stability guarantees
//
// Exploration is deterministic: BFS discovery order, violation traces
// and node counts depend only on the protocol and options, never on
// scheduling (the liveness sweep walks nodes in discovery order, not map
// order). Shared-graph walks are byte-identical to serial ones, and
// shared-graph Theorem 13 chains are byte-identical to the per-stage
// construction (ChainOpts.FreshGraphPerStage is kept as the tested
// ablation baseline).
package model
