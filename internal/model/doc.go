// Package model is the valency engine: an explicit-state model checker for
// consensus protocols in the crash-recovery shared memory model of
// Section 2 of the paper.
//
// Protocols are deterministic per-process state machines over shared
// objects with finite-type sequential specifications. The checker
// exhaustively explores reachable configurations under per-process crash
// budgets, verifies agreement / validity / (recoverable) wait-freedom,
// computes bivalence and univalence of configurations, searches for
// critical executions (Lemma 6), and classifies critical configurations as
// n-recording, v-hiding, or colliding (Observation 11).
//
// # The shared exploration graph
//
// All exploration runs on a Graph: a canonicalized store of
// (configuration, crash-usage, output-history) nodes whose successors
// are computed exactly once, with singleflight expansion. Check builds a
// one-shot Graph; batch callers (engine.CheckBatch) build one Graph per
// input vector and walk it once per request, so common schedule prefixes
// and valency subtrees are expanded once and shared while per-request
// crash quotas and node budgets act as overlays on the walk.
//
// # Concurrency and ownership
//
// A Graph is safe for concurrent use by any number of Check walks. A
// Result is owned by the caller that obtained it and is not safe for
// concurrent mutation; its lazily computed valency map means even
// read-style methods (Valence, FindCritical) must not race.
//
// # Byte-stability guarantees
//
// Exploration is deterministic: BFS discovery order, violation traces
// and node counts depend only on the protocol and options, never on
// scheduling (the liveness sweep walks nodes in discovery order, not map
// order), and shared-graph walks are byte-identical to serial ones.
package model
