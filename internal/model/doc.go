// Package model is the valency engine: an explicit-state model checker for
// consensus protocols in the crash-recovery shared memory model of
// Section 2 of the paper.
//
// Protocols are deterministic per-process state machines over shared
// objects with finite-type sequential specifications. The checker
// exhaustively explores reachable configurations under per-process crash
// budgets, verifies agreement / validity / (recoverable) wait-freedom,
// computes bivalence and univalence of configurations, searches for
// critical executions (Lemma 6), and classifies critical configurations as
// n-recording, v-hiding, or colliding (Observation 11).
//
// # The shared exploration graph
//
// All exploration runs on a Graph: a canonicalized store of
// (configuration, output-history) nodes whose successors are computed
// exactly once, with singleflight expansion. Nodes are interned by a
// 128-bit hashed fingerprint with collision-checked buckets — hashing is
// a speedup, never a correctness input. Crash usage is deliberately NOT
// part of node identity (transitions do not depend on it); each walk
// overlays its own (node, crash-usage) bookkeeping, reproducing the
// serial checker's (configuration, crash-usage, output-history) dedup
// exactly. Check builds a one-shot Graph; batch callers
// (engine.CheckBatch) walk one Graph per input vector, long-lived
// callers (the engine's graph cache) keep Graphs warm across calls, and
// Theorem13ChainOpts walks every chain stage over one Graph — all
// share every transition, output-merge and hash computation.
//
// # Concurrency and ownership
//
// A Graph is safe for concurrent use by any number of Check walks, and
// only ever grows: eviction by a caching layer merely drops a reference,
// in-flight walks finish unharmed. A Result is owned by the caller that
// obtained it and is not safe for concurrent mutation; its lazily
// computed valency map means even read-style methods (Valence,
// FindCritical) must not race. Walk-internal scratch (frontier queues,
// expansion buffers) is pooled per graph and never escapes into Results.
//
// # Byte-stability guarantees
//
// Exploration is deterministic: BFS discovery order, violation traces
// and node counts depend only on the protocol and options, never on
// scheduling (the liveness sweep walks nodes in discovery order, not map
// order). Shared-graph walks are byte-identical to serial ones, and
// shared-graph Theorem 13 chains are byte-identical to the per-stage
// construction (ChainOpts.FreshGraphPerStage is kept as the tested
// ablation baseline).
package model
