package model_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
)

// TestTheorem13ChainCAS runs the mechanized Theorem 13 construction on
// recoverable CAS consensus: the very first critical configuration is
// already n-recording (CAS records the winner forever), so the chain ends
// at stage 0.
func TestTheorem13ChainCAS(t *testing.T) {
	for n := 2; n <= 3; n++ {
		pr := proto.NewCASRecoverable(n)
		inputs := make([]int, n)
		inputs[0] = 1
		quota := make([]int, n)
		for p := 1; p < n; p++ {
			quota[p] = 1
		}
		chain, err := model.Theorem13Chain(pr, inputs, quota)
		if err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, chain)
		}
		if !chain.Recording {
			t.Errorf("n=%d: chain did not reach n-recording:\n%s", n, chain)
		}
		if len(chain.Stages) != 1 {
			t.Logf("n=%d: chain took %d stages:\n%s", n, len(chain.Stages), chain)
		}
	}
}

// TestTheorem13ChainTnnRecoverable runs the construction on the paper's
// own recoverable algorithm within its process bound: Theorem 13
// guarantees the chain reaches an n-recording configuration, certifying
// that T_{n,n'} is n'-recording (n' = procs here).
func TestTheorem13ChainTnnRecoverable(t *testing.T) {
	cases := []struct{ n, np int }{{4, 2}, {5, 2}, {4, 3}}
	for _, c := range cases {
		pr := proto.NewTnnRecoverable(c.n, c.np, c.np)
		inputs := make([]int, c.np)
		inputs[0] = 1
		quota := make([]int, c.np)
		for p := 1; p < c.np; p++ {
			quota[p] = 2
		}
		chain, err := model.Theorem13Chain(pr, inputs, quota)
		if err != nil {
			t.Fatalf("T[%d,%d]: %v\n%s", c.n, c.np, err, chain)
		}
		if !chain.Recording {
			t.Errorf("T[%d,%d]: chain did not reach n-recording:\n%s", c.n, c.np, chain)
		}
		if len(chain.Stages) > c.np {
			t.Errorf("T[%d,%d]: chain took %d stages, paper bounds l <= n-1",
				c.n, c.np, len(chain.Stages))
		}
	}
}

// TestTheorem13ChainRendering checks the report form.
func TestTheorem13ChainRendering(t *testing.T) {
	pr := proto.NewCASRecoverable(2)
	chain, err := model.Theorem13Chain(pr, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := chain.String()
	for _, want := range []string{"stage 0", "class=", "n-recording configuration"} {
		if !strings.Contains(s, want) {
			t.Errorf("chain rendering missing %q:\n%s", want, s)
		}
	}
}

// TestTheorem13ChainUnivalentStart: with equal inputs the initial
// configuration is univalent and the chain cannot start.
func TestTheorem13ChainUnivalentStart(t *testing.T) {
	pr := proto.NewCASRecoverable(2)
	if _, err := model.Theorem13Chain(pr, []int{1, 1}, []int{0, 1}); err == nil {
		t.Error("expected failure from a univalent initial configuration")
	}
}

// chainCases are the property-test protocols: the registry families with
// known multi- and single-stage chains.
func chainCases() []struct {
	name   string
	pr     model.Protocol
	inputs []int
	quota  []int
} {
	return []struct {
		name   string
		pr     model.Protocol
		inputs []int
		quota  []int
	}{
		{"cas-rec-2", proto.NewCASRecoverable(2), []int{1, 0}, []int{0, 1}},
		{"cas-rec-3", proto.NewCASRecoverable(3), []int{1, 0, 0}, []int{0, 1, 1}},
		{"tnn-rec-4-2", proto.NewTnnRecoverable(4, 2, 2), []int{1, 0}, []int{0, 2}},
		{"tnn-rec-4-3", proto.NewTnnRecoverable(4, 3, 3), []int{1, 0, 0}, []int{0, 2, 2}},
		{"tas-reg", proto.NewTASConsensus(), []int{1, 0}, []int{0, 2}},
	}
}

// TestTheorem13ChainGraphMatchesPerStage is the chain byte-identity
// property test: the shared-graph construction must produce stages
// identical — start schedules, critical traces, classifications, team
// vectors — to the historical per-stage construction (FreshGraphPerStage)
// AND to a direct serial replay of every stage (a fresh model.Check from
// the stage's start prefix followed by FindCritical).
func TestTheorem13ChainGraphMatchesPerStage(t *testing.T) {
	for _, tc := range chainCases() {
		t.Run(tc.name, func(t *testing.T) {
			shared, errShared := model.Theorem13ChainOpts(tc.pr, tc.inputs, tc.quota, model.ChainOpts{})
			fresh, errFresh := model.Theorem13ChainOpts(tc.pr, tc.inputs, tc.quota,
				model.ChainOpts{FreshGraphPerStage: true})
			if (errShared == nil) != (errFresh == nil) {
				t.Fatalf("error behavior diverged: shared %v, per-stage %v", errShared, errFresh)
			}
			if errShared != nil {
				if errShared.Error() != errFresh.Error() {
					t.Fatalf("errors diverged: shared %v, per-stage %v", errShared, errFresh)
				}
				return
			}
			if shared.String() != fresh.String() {
				t.Fatalf("shared-graph chain diverged from per-stage chain:\n got %s\nwant %s",
					shared, fresh)
			}

			// Replay every stage serially: Check from the stage's start
			// prefix, FindCritical, and compare the full classification.
			for i, st := range shared.Stages {
				res, err := model.Check(tc.pr, model.CheckOpts{
					Inputs:       tc.inputs,
					CrashQuota:   tc.quota,
					StartTrace:   st.Start,
					SkipLiveness: true,
				})
				if err != nil {
					t.Fatalf("stage %d serial replay: %v", i, err)
				}
				info, err := model.FindCritical(res)
				if err != nil {
					t.Fatalf("stage %d serial FindCritical: %v", i, err)
				}
				if got, want := st.Info.Trace.String(), info.Trace.String(); got != want {
					t.Fatalf("stage %d: trace diverged: got [%s] want [%s]", i, got, want)
				}
				if st.Info.Class != info.Class {
					t.Fatalf("stage %d: class diverged: got %s want %s", i, st.Info.Class, info.Class)
				}
				if !reflect.DeepEqual(st.Info.Teams, info.Teams) {
					t.Fatalf("stage %d: teams diverged: got %v want %v", i, st.Info.Teams, info.Teams)
				}
				if st.Info.Config.String() != info.Config.String() {
					t.Fatalf("stage %d: critical configuration diverged", i)
				}
			}
		})
	}
}

// TestTheorem13ChainSharedGraphExpandsOnce quantifies the tentpole: a
// chain on one shared graph never expands more than per-stage one-shot
// graphs would, and — the acceptance criterion — the graph's Expanded
// counter is FLAT after the first stage: every later stage's walk is
// served entirely from the stage-0 expansion. The registry's recoverable
// protocols end n-recording at stage 0, so the multi-walk case is
// tas-reg: its colliding stage-0 classification forces the Figure 1 move
// and a second full exploration from the shifted root (which then fails
// FindCritical — wait-free-only algorithms are expected to; the stage-1
// walk still ran, and is what this test measures).
func TestTheorem13ChainSharedGraphExpandsOnce(t *testing.T) {
	for _, tc := range chainCases() {
		t.Run(tc.name, func(t *testing.T) {
			g, err := model.NewGraph(tc.pr, tc.inputs)
			if err != nil {
				t.Fatal(err)
			}
			var perStage []model.GraphStats
			shared, chainErr := model.Theorem13ChainOpts(tc.pr, tc.inputs, tc.quota, model.ChainOpts{
				Graph:   g,
				OnStage: func(int, *model.CriticalInfo) { perStage = append(perStage, g.Stats()) },
			})
			if chainErr != nil && len(shared.Stages) == 0 {
				t.Fatalf("chain failed before any stage: %v", chainErr)
			}
			if len(perStage) > 0 {
				afterStage0 := perStage[0].Expanded
				if final := g.Stats().Expanded; final != afterStage0 {
					t.Fatalf("Expanded not flat across stages: %d after stage 0, %d at the end",
						afterStage0, final)
				}
			}

			// The per-stage baseline: total expansions when every stage
			// explores its own one-shot graph (exactly what the shared
			// chain's walks covered, minus a possibly erroring final
			// stage whose walk the shared graph additionally absorbed).
			var freshTotal uint64
			for _, st := range shared.Stages {
				fg, err := model.NewGraph(tc.pr, tc.inputs)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := fg.Check(model.CheckOpts{
					Inputs:     tc.inputs,
					CrashQuota: tc.quota,
					StartTrace: st.Start, SkipLiveness: true,
				}); err != nil {
					t.Fatal(err)
				}
				freshTotal += fg.Stats().Expanded
			}
			if sharedTotal := g.Stats().Expanded; sharedTotal > freshTotal {
				t.Fatalf("shared graph expanded more (%d) than per-stage total (%d)",
					sharedTotal, freshTotal)
			}
		})
	}
}
