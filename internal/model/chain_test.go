package model_test

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/proto"
)

// TestTheorem13ChainCAS runs the mechanized Theorem 13 construction on
// recoverable CAS consensus: the very first critical configuration is
// already n-recording (CAS records the winner forever), so the chain ends
// at stage 0.
func TestTheorem13ChainCAS(t *testing.T) {
	for n := 2; n <= 3; n++ {
		pr := proto.NewCASRecoverable(n)
		inputs := make([]int, n)
		inputs[0] = 1
		quota := make([]int, n)
		for p := 1; p < n; p++ {
			quota[p] = 1
		}
		chain, err := model.Theorem13Chain(pr, inputs, quota)
		if err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, chain)
		}
		if !chain.Recording {
			t.Errorf("n=%d: chain did not reach n-recording:\n%s", n, chain)
		}
		if len(chain.Stages) != 1 {
			t.Logf("n=%d: chain took %d stages:\n%s", n, len(chain.Stages), chain)
		}
	}
}

// TestTheorem13ChainTnnRecoverable runs the construction on the paper's
// own recoverable algorithm within its process bound: Theorem 13
// guarantees the chain reaches an n-recording configuration, certifying
// that T_{n,n'} is n'-recording (n' = procs here).
func TestTheorem13ChainTnnRecoverable(t *testing.T) {
	cases := []struct{ n, np int }{{4, 2}, {5, 2}, {4, 3}}
	for _, c := range cases {
		pr := proto.NewTnnRecoverable(c.n, c.np, c.np)
		inputs := make([]int, c.np)
		inputs[0] = 1
		quota := make([]int, c.np)
		for p := 1; p < c.np; p++ {
			quota[p] = 2
		}
		chain, err := model.Theorem13Chain(pr, inputs, quota)
		if err != nil {
			t.Fatalf("T[%d,%d]: %v\n%s", c.n, c.np, err, chain)
		}
		if !chain.Recording {
			t.Errorf("T[%d,%d]: chain did not reach n-recording:\n%s", c.n, c.np, chain)
		}
		if len(chain.Stages) > c.np {
			t.Errorf("T[%d,%d]: chain took %d stages, paper bounds l <= n-1",
				c.n, c.np, len(chain.Stages))
		}
	}
}

// TestTheorem13ChainRendering checks the report form.
func TestTheorem13ChainRendering(t *testing.T) {
	pr := proto.NewCASRecoverable(2)
	chain, err := model.Theorem13Chain(pr, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := chain.String()
	for _, want := range []string{"stage 0", "class=", "n-recording configuration"} {
		if !strings.Contains(s, want) {
			t.Errorf("chain rendering missing %q:\n%s", want, s)
		}
	}
}

// TestTheorem13ChainUnivalentStart: with equal inputs the initial
// configuration is univalent and the chain cannot start.
func TestTheorem13ChainUnivalentStart(t *testing.T) {
	pr := proto.NewCASRecoverable(2)
	if _, err := model.Theorem13Chain(pr, []int{1, 1}, []int{0, 1}); err == nil {
		t.Error("expected failure from a univalent initial configuration")
	}
}
