package model

import (
	"fmt"

	"repro/internal/spec"
)

// GraphSnapshot is a self-contained, deterministic copy of a Graph's
// interned node table, the unit of exchange between a live Graph and the
// on-disk graph store (internal/graphstore). Node references are
// positions in Nodes; local-state strings are interned once in States and
// referenced by index, so records are fixed-width given the protocol's
// process and object counts.
//
// The snapshot preserves the graph's intern order exactly, which makes
// the round trip Export -> ImportSnapshot -> Export byte-stable: the
// second export reproduces the first snapshot verbatim (plus any nodes
// interned in between, appended after the preserved prefix).
type GraphSnapshot struct {
	// Procs and Objects are the protocol dimensions every node record is
	// sized by.
	Procs   int
	Objects int
	// Inputs is the input vector the graph is built for.
	Inputs []int
	// States is the local-state string dictionary, in first-use order
	// over Nodes.
	States []string
	// Nodes is the interned node table in intern order.
	Nodes []SnapshotNode
}

// SnapshotNode is one canonical graph node in exchange form. All index
// slices have length Procs (StepSucc, CrashSucc, States, Outs, Decided)
// or Objects (Vals).
type SnapshotNode struct {
	// FPHi, FPLo are the node's 128-bit index fingerprint — stored so a
	// loader can verify a record's integrity independently of the
	// container's checksums (ImportSnapshot recomputes and compares).
	FPHi, FPLo uint64
	// States[p] indexes the snapshot's state dictionary.
	States []uint32
	// Vals are the shared-object values.
	Vals []int32
	// Outs and Decided are the node's output history and precomputed
	// decision vector (-1 = undecided).
	Outs    []int8
	Decided []int8
	// Done reports whether the node's expansion is included. Unexpanded
	// nodes import with no successors and expand lazily on first walk.
	Done bool
	// StepSucc[p] is the step successor via process p as a position in
	// Nodes, or -1 (decided process, or node not Done). CrashSucc[p] is
	// the crash successor of process p, or -1 (initial state, or node
	// not Done).
	StepSucc  []int32
	CrashSucc []int32
}

// NumExpanded counts the snapshot's Done nodes.
func (s *GraphSnapshot) NumExpanded() int {
	n := 0
	for i := range s.Nodes {
		if s.Nodes[i].Done {
			n++
		}
	}
	return n
}

// Export snapshots the graph's interned node table. It is safe to call
// concurrently with walks: the node list is pinned under the graph lock,
// and a node whose expansion raced the snapshot (some successor interned
// after the pin) is exported unexpanded, so the snapshot is always
// internally consistent. Because interning only appends, a later Export
// reproduces an earlier one as its prefix — the contract the append-only
// graph store's delta spilling relies on.
func (g *Graph) Export() *GraphSnapshot {
	g.mu.Lock()
	nodes := make([]*gnode, len(g.order))
	copy(nodes, g.order)
	g.mu.Unlock()

	index := make(map[*gnode]int32, len(nodes))
	for i, nd := range nodes {
		index[nd] = int32(i)
	}
	n := g.pr.Procs()
	snap := &GraphSnapshot{
		Procs:   n,
		Objects: len(g.pr.Objects()),
		Inputs:  g.Inputs(),
		Nodes:   make([]SnapshotNode, len(nodes)),
	}
	dict := make(map[string]uint32)
	stateID := func(s string) uint32 {
		if id, ok := dict[s]; ok {
			return id
		}
		id := uint32(len(snap.States))
		dict[s] = id
		snap.States = append(snap.States, s)
		return id
	}

	for i, nd := range nodes {
		rec := &snap.Nodes[i]
		fp := fingerprintOf(nd.cfg, nd.outs)
		rec.FPHi, rec.FPLo = fp.hi, fp.lo
		rec.States = make([]uint32, n)
		for p, s := range nd.cfg.States {
			rec.States[p] = stateID(s)
		}
		rec.Vals = make([]int32, len(nd.cfg.Vals))
		for j, v := range nd.cfg.Vals {
			rec.Vals[j] = int32(v)
		}
		rec.Outs = append([]int8(nil), nd.outs...)
		rec.Decided = append([]int8(nil), nd.decided...)
		rec.StepSucc = fillInt32(n, -1)
		rec.CrashSucc = fillInt32(n, -1)
		if !nd.done.Load() {
			continue
		}
		// The done flag is an acquire on the expansion set. Successors
		// interned after the pin are not in the index; exporting such a
		// node unexpanded keeps every reference internal.
		ok := true
		for j, sg := range nd.stepSucc {
			idx, in := index[sg]
			if !in {
				ok = false
				break
			}
			rec.StepSucc[nd.stepP[j]] = idx
		}
		if ok {
			for p, cg := range nd.crashSucc {
				if cg == nil {
					continue
				}
				idx, in := index[cg]
				if !in {
					ok = false
					break
				}
				rec.CrashSucc[p] = idx
			}
		}
		if !ok {
			rec.StepSucc = fillInt32(n, -1)
			rec.CrashSucc = fillInt32(n, -1)
			continue
		}
		rec.Done = true
	}
	return snap
}

func fillInt32(n int, v int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// ImportSnapshot populates an empty graph from a snapshot, rebuilding the
// interned node table (and each Done node's expansion) without running a
// single protocol transition. The graph must be freshly built by NewGraph
// for the same protocol shape and input vector; importing into a graph
// that already interned nodes is an error.
//
// Every structural property of the snapshot is validated — dimensions,
// dictionary and successor references, object-value ranges, duplicate
// node identities — and each node's 128-bit fingerprint is recomputed
// from its configuration and output history and compared against the
// stored one, so a corrupted snapshot (even one that slipped past the
// container's checksums) is rejected as a whole rather than imported as
// a wrong graph. Callers degrade to a cold (re-expanding) graph on
// error; they never get a graph that walks differently from a fresh
// expansion.
func (g *Graph) ImportSnapshot(snap *GraphSnapshot) error {
	n := g.pr.Procs()
	objs := g.pr.Objects()
	if snap.Procs != n || snap.Objects != len(objs) {
		return fmt.Errorf("model: snapshot shape %d procs/%d objects, graph has %d/%d",
			snap.Procs, snap.Objects, n, len(objs))
	}
	if len(snap.Inputs) != len(g.inputs) {
		return fmt.Errorf("model: snapshot has %d inputs, graph %d", len(snap.Inputs), len(g.inputs))
	}
	for p, in := range snap.Inputs {
		if in != g.inputs[p] {
			return fmt.Errorf("model: snapshot built for inputs %v, graph for %v", snap.Inputs, g.inputs)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.order) != 0 {
		return fmt.Errorf("model: import into a graph with %d interned nodes", len(g.order))
	}

	total := len(snap.Nodes)
	built := make([]*gnode, total)
	// The node index is built as a LOCAL open-addressed table (presized so
	// it never grows) and swapped into the graph only after every record
	// validates — a rejected snapshot leaves the graph empty and cold, it
	// never half-imports. Packing goes through mustPackInto: a snapshot may
	// carry local-state strings outside the protocol's canonical closure
	// (an alien but shape-valid record), and extension under the held
	// graph mutex gives such states ids instead of refusing the import.
	capacity := 64
	for capacity*3 < (total+1)*4 {
		capacity <<= 1
	}
	table := make([]*gnode, capacity)
	mask := uint64(capacity - 1)
	words := make([]uint64, g.enc.words)
	for i := range snap.Nodes {
		rec := &snap.Nodes[i]
		if len(rec.States) != n || len(rec.Outs) != n || len(rec.Decided) != n ||
			len(rec.StepSucc) != n || len(rec.CrashSucc) != n || len(rec.Vals) != len(objs) {
			return fmt.Errorf("model: snapshot node %d has wrong field lengths", i)
		}
		cfg := Config{States: make([]string, n), Vals: make([]spec.Value, len(objs))}
		for p, id := range rec.States {
			if int(id) >= len(snap.States) {
				return fmt.Errorf("model: snapshot node %d references state %d of %d", i, id, len(snap.States))
			}
			cfg.States[p] = snap.States[id]
		}
		for j, v := range rec.Vals {
			if v < 0 || int(v) >= objs[j].Type.NumValues() {
				return fmt.Errorf("model: snapshot node %d object %d value %d out of range", i, j, v)
			}
			cfg.Vals[j] = spec.Value(v)
		}
		for p := 0; p < n; p++ {
			if rec.Outs[p] < -1 || rec.Decided[p] < -1 {
				return fmt.Errorf("model: snapshot node %d has negative output/decision", i)
			}
		}
		fp := fingerprintOf(cfg, rec.Outs)
		if fp.hi != rec.FPHi || fp.lo != rec.FPLo {
			return fmt.Errorf("model: snapshot node %d fingerprint mismatch (corrupt record)", i)
		}
		g.enc.mustPackInto(words, cfg, rec.Outs)
		h := hashWords(words)
		slot := h & mask
		dup := false
		for table[slot] != nil {
			if table[slot].hash == h && wordsEqual(table[slot].words, words) {
				dup = true
				break
			}
			slot = (slot + 1) & mask
		}
		if dup {
			return fmt.Errorf("model: snapshot node %d duplicates an earlier node", i)
		}
		nd := &gnode{
			cfg:     cfg,
			outs:    append([]int8(nil), rec.Outs...),
			decided: append([]int8(nil), rec.Decided...),
			words:   append([]uint64(nil), words...),
			hash:    h,
		}
		table[slot] = nd
		built[i] = nd
	}

	// Second pass: wire the expansions. References may point anywhere in
	// the table (a node interned early can be expanded late), which is
	// why wiring waits until every node exists.
	for i := range snap.Nodes {
		rec := &snap.Nodes[i]
		if !rec.Done {
			continue
		}
		nd := built[i]
		for p := 0; p < n; p++ {
			si := rec.StepSucc[p]
			if si >= 0 && int(si) >= total {
				return fmt.Errorf("model: snapshot node %d step successor %d of %d", i, si, total)
			}
			if rec.Decided[p] >= 0 {
				if si >= 0 {
					return fmt.Errorf("model: snapshot node %d has a step successor for decided process %d", i, p)
				}
				continue
			}
			if si < 0 {
				return fmt.Errorf("model: snapshot node %d done but missing step successor for process %d", i, p)
			}
			nd.stepSucc = append(nd.stepSucc, built[si])
			nd.stepP = append(nd.stepP, p)
		}
		nd.crashSucc = make([]*gnode, n)
		for p := 0; p < n; p++ {
			ci := rec.CrashSucc[p]
			if int(ci) >= total {
				return fmt.Errorf("model: snapshot node %d crash successor %d of %d", i, ci, total)
			}
			inInit := nd.cfg.States[p] == g.pr.Init(p, g.inputs[p])
			switch {
			case ci < 0 && !inInit:
				return fmt.Errorf("model: snapshot node %d done but missing crash successor for process %d", i, p)
			case ci >= 0 && inInit:
				return fmt.Errorf("model: snapshot node %d has a crash successor for initial-state process %d", i, p)
			case ci >= 0:
				nd.crashSucc[p] = built[ci]
			}
		}
		nd.done.Store(true)
	}

	g.order = built
	g.table = table
	g.live = total
	g.interned.Store(uint64(total))
	g.expanded.Store(uint64(snap.NumExpanded()))
	return nil
}
