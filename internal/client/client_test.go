package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/jobs"
	"repro/internal/model"
	"repro/internal/protodef"
	"repro/internal/registry"
	"repro/internal/serve"
)

// TestIntegrationClientEndToEnd is the serve-layer jobs/protocols/SSE
// integration contract driven exclusively through the typed client:
// protocol registration by structural fingerprint, graph-cache reuse
// across named and fingerprint-addressed checks, an async check job
// followed over the resumable event stream, and coded errors decoding
// into *APIError.
func TestIntegrationClientEndToEnd(t *testing.T) {
	srv := serve.New(serve.Config{MaxN: 3, Parallelism: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	ctx := context.Background()
	c := client.New(ts.URL)

	// ---- Version and revision negotiation.
	v, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.APIRevision != serve.APIRevision || v.GoVersion == "" || v.Module == "" {
		t.Fatalf("version = %+v, want API revision %d", v, serve.APIRevision)
	}
	if c.APIRevision() != serve.APIRevision {
		t.Fatalf("client saw X-Reprod-Api %d, want %d", c.APIRevision(), serve.APIRevision)
	}

	// ---- Typed analyze, and a coded error for a bad descriptor.
	a, err := c.Analyze(ctx, serve.AnalyzeRequest{Type: "tas"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Analysis == nil || a.Analysis.ConsensusNumber != "2" {
		t.Fatalf("tas analysis = %+v", a.Analysis)
	}
	_, err = c.Analyze(ctx, serve.AnalyzeRequest{Type: "nosuchtype"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest || ae.Code != serve.CodeBadRequest {
		t.Fatalf("bad analyze error = %v, want 400 %s", err, serve.CodeBadRequest)
	}
	if !client.IsCode(err, serve.CodeBadRequest) {
		t.Fatalf("IsCode(%v, bad_request) = false", err)
	}

	// ---- Descriptor twin of a registry protocol registers under the
	// registry build's exact fingerprint; re-registering is idempotent.
	reg, err := registry.ParseProtocol("tnn-wf:3,2")
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := model.Fingerprint(reg)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := protodef.Describe(reg)
	if err != nil {
		t.Fatal(err)
	}
	desc.Name = "my-tnn-twin" // nominal data must not matter
	body, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c.RegisterProtocol(ctx, body)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Fingerprint != wantFP || pr.Known {
		t.Fatalf("register = %+v, want fresh registration under %s", pr, wantFP)
	}
	again, err := c.RegisterProtocol(ctx, body)
	if err != nil || !again.Known {
		t.Fatalf("re-register = %+v, %v; want Known=true", again, err)
	}
	detail, err := c.Protocol(ctx, pr.Fingerprint)
	if err != nil || detail.Descriptor == nil {
		t.Fatalf("protocol detail = %+v, %v", detail, err)
	}

	// ---- A named check warms the graph cache; the
	// fingerprint-addressed twin walks the same graph.
	items := []serve.CheckItemRequest{
		{Inputs: []int{0, 1, 1}},
		{Inputs: []int{0, 1, 1}, CrashQuota: []int{1, 0, 0}},
	}
	if _, err := c.Check(ctx, serve.CheckRequestBody{Protocol: "tnn-wf:3,2", Requests: items}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	misses := stats.GraphCache.Misses
	if misses == 0 {
		t.Fatalf("named check did not populate the graph cache: %+v", stats.GraphCache)
	}
	res, err := c.Check(ctx, serve.CheckRequestBody{ProtocolFingerprint: pr.Fingerprint, Requests: items})
	if err != nil {
		t.Fatal(err)
	}
	// (The wait-free protocol is legitimately not crash-tolerant, so the
	// crash-quota item reports violations; only per-item errors are bugs.)
	for i, item := range res.Results {
		if item.Error != "" {
			t.Fatalf("check item %d = %+v", i, item)
		}
	}
	if stats, err = c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if stats.GraphCache.Hits == 0 || stats.GraphCache.Misses != misses {
		t.Fatalf("fingerprint check did not reuse the cached graph: %+v", stats.GraphCache)
	}

	// ---- Async job followed over the event stream.
	view, err := c.SubmitJob(ctx, serve.JobRequest{
		Kind:  "check",
		Check: &serve.CheckRequestBody{ProtocolFingerprint: pr.Fingerprint, Requests: items},
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.ID == "" || view.State.Terminal() {
		t.Fatalf("submitted job view wrong: %+v", view)
	}
	var progress int
	terminal := ""
	lastID := int64(-1)
	err = c.JobEvents(ctx, view.ID, func(e client.JobEvent) error {
		if e.ID <= lastID {
			return fmt.Errorf("event IDs not increasing: %d after %d", e.ID, lastID)
		}
		lastID = e.ID
		if strings.HasPrefix(e.Kind, "job.") {
			if e.Terminal() {
				terminal = e.Kind
			}
			return nil
		}
		progress++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress < 1 || terminal != "job.done" {
		t.Fatalf("event stream: %d progress events, terminal %q; want >=1 and job.done", progress, terminal)
	}
	done, err := c.Job(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || done.Result == nil {
		t.Fatalf("finished job view wrong: %+v", done)
	}

	// ---- Streams of unknown jobs refuse with a coded 404.
	if err := c.JobEvents(ctx, "nope", func(client.JobEvent) error { return nil }); !client.IsCode(err, serve.CodeNotFound) {
		t.Fatalf("events of unknown job = %v, want %s", err, serve.CodeNotFound)
	}
}

// TestClientJobEventsResume pins the reconnect contract against a
// scripted SSE server: a stream cut mid-job resumes with the standard
// Last-Event-ID header, and replay overlap after reconnect is
// deduplicated — the callback sees each event exactly once, in order.
func TestClientJobEventsResume(t *testing.T) {
	var conns int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		conns++
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		switch conns {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Errorf("first connection carried Last-Event-ID %q", r.Header.Get("Last-Event-ID"))
			}
			fmt.Fprint(w, "id: 0\nevent: job.running\ndata: {}\n\n")
			fmt.Fprint(w, ": keepalive\n\n")
			fmt.Fprint(w, "id: 1\nevent: check.done\ndata: {\"ok\":true}\n\n")
			fl.Flush()
			// Drop the connection without a terminal event.
		default:
			if got := r.Header.Get("Last-Event-ID"); got != "1" {
				t.Errorf("reconnect Last-Event-ID = %q, want 1", got)
			}
			// Replay overlap: the client must skip the already-seen event 1.
			fmt.Fprint(w, "id: 1\nevent: check.done\ndata: {\"ok\":true}\n\n")
			fmt.Fprint(w, "id: 2\nevent: job.done\ndata: {}\n\n")
			fl.Flush()
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var got []string
	c := client.New(ts.URL)
	err := c.JobEvents(context.Background(), "j1", func(e client.JobEvent) error {
		got = append(got, fmt.Sprintf("%d:%s", e.ID, e.Kind))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:job.running", "1:check.done", "2:job.done"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("events across reconnect = %v, want %v", got, want)
	}
	if conns < 2 {
		t.Fatalf("client never reconnected (%d connections)", conns)
	}
}

// TestRequestIDPropagation pins the client half of the request-identity
// contract: a caller-set ID travels out as X-Request-Id (invalid ones
// do not), and a failing call surfaces the server-echoed ID on
// *APIError — from the echo header, or from the envelope body when a
// proxy strips headers.
func TestRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	srv := serve.New(serve.Config{MaxN: 2})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Request-Id"))
		mu.Unlock()
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	c := client.New(ts.URL)

	ctx := client.WithRequestID(context.Background(), "cli-42")
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := c.Analyze(ctx, serve.AnalyzeRequest{Type: "nosuchtype"})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.RequestID != "cli-42" {
		t.Fatalf("APIError.RequestID = %q, want the caller's ID", ae.RequestID)
	}
	if !strings.Contains(ae.Error(), "cli-42") {
		t.Fatalf("error string hides the request ID: %s", ae.Error())
	}
	// An invalid ID must not be sent; the server assigns one instead.
	if _, err := c.Stats(client.WithRequestID(context.Background(), "bad id")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 || seen[0] != "cli-42" || seen[1] != "cli-42" || seen[2] != "" {
		t.Fatalf("X-Request-Id headers sent = %q", seen)
	}
}

// TestAPIErrorRequestIDFromBody covers the header-stripped fallback.
func TestAPIErrorRequestIDFromBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"code":"bad_request","error":"nope","requestId":"body-7"}`)
	}))
	defer ts.Close()
	_, err := client.New(ts.URL).Stats(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.RequestID != "body-7" {
		t.Fatalf("err = %v, want requestId body-7 from the envelope body", err)
	}
}
