// Package client is the typed Go client of the reprod HTTP API
// (internal/serve). It speaks the same exported request/response
// structs the server does — serve.AnalyzeRequest in, serve.CheckResponse
// out — so the wire contract is shared by construction, not duplicated.
//
// # Errors
//
// Every non-2xx reply decodes into an *APIError carrying the HTTP
// status and the server's stable machine-readable code (see the
// serve.Code* constants); branch with errors.As plus APIError.Code,
// or the IsCode helper:
//
//	_, err := c.Check(ctx, body)
//	if client.IsCode(err, serve.CodeQueueFull) {
//		// back off and retry
//	}
//
// # Job streams
//
// JobEvents follows one job's Server-Sent Events stream to its
// terminal lifecycle event. Dropped connections reconnect
// automatically with the standard Last-Event-ID header, so the caller
// observes each event once, in order, across reconnects.
//
// The root package re-exports the client as repro.Client/repro.NewClient.
package client
