package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
)

// JobEvent is one event of a job's SSE stream: the server-assigned
// sequence number, the event kind ("job.running", "check.done",
// "job.done", ...), and the kind-specific JSON payload.
type JobEvent struct {
	ID   int64
	Kind string
	Data json.RawMessage
}

// Terminal reports whether the event ends the job's lifecycle
// ("job.done", "job.failed" or "job.canceled").
func (e JobEvent) Terminal() bool {
	return strings.HasPrefix(e.Kind, "job.") &&
		jobs.State(strings.TrimPrefix(e.Kind, "job.")).Terminal()
}

// JobEvents follows GET /v1/jobs/{id}/events until the job's terminal
// lifecycle event, calling fn for every event in order. A dropped
// stream reconnects automatically with the Last-Event-ID header, so fn
// sees each event exactly once across reconnects. It returns nil after
// the terminal event, fn's error if fn fails (the stream stops), the
// context's error when ctx fires, or an *APIError when the server
// refuses the stream (e.g. the job aged out of history).
func (c *Client) JobEvents(ctx context.Context, id string, fn func(JobEvent) error) error {
	lastID := int64(-1)
	backoff := 100 * time.Millisecond
	for {
		terminal, err := c.streamEvents(ctx, id, &lastID, fn)
		if terminal || err != nil {
			return err
		}
		// The stream ended without a terminal event (server drain, proxy
		// cut, slow-subscriber drop): reconnect and resume.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// streamEvents runs one SSE connection, forwarding events to fn and
// advancing *lastID. It reports whether a terminal event arrived; a
// stream that just drops returns (false, nil) so the caller reconnects.
func (c *Client) streamEvents(ctx context.Context, id string, lastID *int64, fn func(JobEvent) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return false, fmt.Errorf("client: job events: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	setRequestID(req)
	if *lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(*lastID, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, nil // transient transport failure: reconnect
	}
	defer resp.Body.Close()
	c.noteRevision(resp)
	if resp.StatusCode != http.StatusOK {
		return false, decodeAPIError(resp)
	}

	var ev JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event; bare keepalive
			// comments accumulate nothing.
			if ev.Kind == "" && ev.Data == nil {
				continue
			}
			if ev.ID > *lastID {
				*lastID = ev.ID
				if err := fn(ev); err != nil {
					return false, err
				}
				if ev.Terminal() {
					return true, nil
				}
			}
			ev = JobEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.Kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		}
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, nil // connection dropped mid-stream: reconnect
}
