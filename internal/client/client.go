package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Client calls a reprod server. Construct with New; the zero value is
// not usable. Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	// apiRevision remembers the last X-Reprod-Api header seen, 0 before
	// any response carried one.
	apiRevision atomic.Int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request
// (default http.DefaultClient). Give it a client with a timeout for
// unary calls only if job event streams get their own Client — a
// client-wide timeout would cut long SSE streams mid-job.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New builds a client for the server at baseURL (scheme://host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIRevision reports the server's /v1 wire-contract revision from the
// X-Reprod-Api header of the most recent response (0 before the first
// call). Compare against serve.APIRevision to detect a newer server.
func (c *Client) APIRevision() int { return int(c.apiRevision.Load()) }

// WithRequestID returns a context that makes every client call under it
// send the given ID as X-Request-Id, so one caller-chosen ID names the
// request in the caller's logs, the server's access log and any error
// envelope. It is obs.WithRequestID re-exported so client users need no
// obs import. Invalid IDs (empty, over 128 chars, characters outside
// [A-Za-z0-9._:/+-]) are not sent; the server then assigns its own.
func WithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// APIError is a decoded non-2xx server reply.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the server's stable machine-readable error code (one of
	// the serve.Code* constants; empty when the reply was not a coded
	// envelope, e.g. a 404 from the wrong base URL).
	Code string
	// Message is the human-readable error.
	Message string
	// RequestID is the server-echoed X-Request-Id of the failed request
	// (empty when the reply carried none) — quote it in bug reports so
	// the failure can be found in the server's logs.
	RequestID string
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("server: %d: %s", e.StatusCode, e.Message)
	if e.Code != "" {
		msg = fmt.Sprintf("server: %d %s: %s", e.StatusCode, e.Code, e.Message)
	}
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	return msg
}

// IsCode reports whether err is an *APIError carrying the given stable
// error code (a serve.Code* constant).
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// do runs one round trip: marshal in (nil = no body), decode a 2xx into
// out (nil = discard), decode anything else into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, ok := in.(json.RawMessage)
		if !ok {
			var err error
			if raw, err = json.Marshal(in); err != nil {
				return fmt.Errorf("client: encoding %s %s body: %w", method, path, err)
			}
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	setRequestID(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	c.noteRevision(resp)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s reply: %w", method, path, err)
	}
	return nil
}

// noteRevision records the response's X-Reprod-Api header.
func (c *Client) noteRevision(resp *http.Response) {
	if v := resp.Header.Get("X-Reprod-Api"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			c.apiRevision.Store(n)
		}
	}
}

// setRequestID propagates a caller-set request ID (WithRequestID) onto
// the outgoing request's X-Request-Id header.
func setRequestID(req *http.Request) {
	if id := obs.RequestIDFrom(req.Context()); obs.ValidRequestID(id) {
		req.Header.Set(obs.HeaderRequestID, id)
	}
}

// decodeAPIError turns a non-2xx reply into an *APIError, degrading
// gracefully when the body is not a coded envelope. The request ID is
// taken from the echo header, falling back to the envelope's requestId
// field (a proxy may strip headers but forward the body).
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	rid := resp.Header.Get(obs.HeaderRequestID)
	var envelope struct {
		Code      string `json:"code"`
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(raw, &envelope); err == nil && envelope.Error != "" {
		if rid == "" {
			rid = envelope.RequestID
		}
		return &APIError{StatusCode: resp.StatusCode, Code: envelope.Code, Message: envelope.Error, RequestID: rid}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(raw)), RequestID: rid}
}

// Analyze runs POST /v1/analyze: one type's hierarchy analysis.
func (c *Client) Analyze(ctx context.Context, req serve.AnalyzeRequest) (*serve.AnalyzeResponse, error) {
	var out serve.AnalyzeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch runs POST /v1/batch: many types, per-type errors inline.
func (c *Client) Batch(ctx context.Context, req serve.BatchRequest) (*serve.BatchResponse, error) {
	var out serve.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Check runs POST /v1/check: a model-check batch over shared
// exploration graphs.
func (c *Client) Check(ctx context.Context, req serve.CheckRequestBody) (*serve.CheckResponse, error) {
	var out serve.CheckResponse
	if err := c.do(ctx, http.MethodPost, "/v1/check", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterProtocol runs POST /v1/protocols. The descriptor is the raw
// protodef JSON document (it is forwarded verbatim, not re-encoded).
func (c *Client) RegisterProtocol(ctx context.Context, descriptor []byte) (*serve.ProtocolResponse, error) {
	var out serve.ProtocolResponse
	if err := c.do(ctx, http.MethodPost, "/v1/protocols", json.RawMessage(descriptor), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Protocol runs GET /v1/protocols/{fingerprint}.
func (c *Client) Protocol(ctx context.Context, fingerprint string) (*serve.ProtocolDetail, error) {
	var out serve.ProtocolDetail
	if err := c.do(ctx, http.MethodGet, "/v1/protocols/"+url.PathEscape(fingerprint), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob runs POST /v1/jobs: the reply is the queued job's snapshot.
func (c *Client) SubmitJob(ctx context.Context, req serve.JobRequest) (*jobs.View, error) {
	var out jobs.View
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job runs GET /v1/jobs/{id}.
func (c *Client) Job(ctx context.Context, id string) (*jobs.View, error) {
	var out jobs.View
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob runs DELETE /v1/jobs/{id}: best-effort cancellation,
// returning the job's snapshot at cancellation time.
func (c *Client) CancelJob(ctx context.Context, id string) (*jobs.View, error) {
	var out jobs.View
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats runs GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	var out serve.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Version runs GET /v1/version.
func (c *Client) Version(ctx context.Context) (*serve.VersionResponse, error) {
	var out serve.VersionResponse
	if err := c.do(ctx, http.MethodGet, "/v1/version", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compact runs POST /v1/compact.
func (c *Client) Compact(ctx context.Context) (*serve.CompactResponse, error) {
	var out serve.CompactResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compact", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
