package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/spec"
	"repro/internal/types"
)

// zoo is the type population the tests analyze: cheap at maxN 4, and
// mixing positive and negative decisions, discerning and recording
// witnesses, readable and non-readable types.
func zoo() []*spec.FiniteType {
	return []*spec.FiniteType{
		types.TestAndSet(),
		types.Tnn(3, 1),
		types.TnnReadable(3),
		types.Register(2),
	}
}

// analyzeInto runs the zoo through an engine backed by st's cache and
// returns the marshaled witnesses of every analysis, keyed by type name
// and level, for byte-identity comparison.
func analyzeInto(t *testing.T, st *Store, maxN int) map[string][]byte {
	t.Helper()
	eng := engine.New(engine.WithCache(st.Cache()), engine.WithParallelism(2), engine.WithMaxN(maxN))
	out := map[string][]byte{}
	as, err := eng.AnalyzeAll(zoo())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		for n := 2; n <= maxN; n++ {
			if w := a.DiscerningWitness[n]; w != nil {
				b, err := json.Marshal(w)
				if err != nil {
					t.Fatal(err)
				}
				out[a.Type.Name()+"/discerning/"+string(rune('0'+n))] = b
			}
			if w := a.RecordingWitness[n]; w != nil {
				b, err := json.Marshal(w)
				if err != nil {
					t.Fatal(err)
				}
				out[a.Type.Name()+"/recording/"+string(rune('0'+n))] = b
			}
		}
	}
	return out
}

// TestRoundTripWarmStart is the core persistence property for levels
// n=2..4: run 1 computes and persists decisions; run 2 against the same
// path warm-loads them, recomputes nothing (zero misses), and serves
// byte-identical witnesses.
func TestRoundTripWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")

	st1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	w1 := analyzeInto(t, st1, 4)
	_, misses1, entries1 := st1.Cache().Stats()
	if misses1 == 0 || entries1 == 0 {
		t.Fatalf("cold run computed nothing: misses=%d entries=%d", misses1, entries1)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Loaded; got != entries1 {
		t.Fatalf("warm-loaded %d decisions, want %d", got, entries1)
	}
	w2 := analyzeInto(t, st2, 4)
	hits, misses, _ := st2.Cache().Stats()
	if misses != 0 {
		t.Errorf("warm run recomputed %d decisions (hits=%d)", misses, hits)
	}
	if len(w1) != len(w2) {
		t.Fatalf("witness sets differ in size: %d vs %d", len(w1), len(w2))
	}
	for k, b1 := range w1 {
		if !bytes.Equal(b1, w2[k]) {
			t.Errorf("witness %s not byte-identical:\n run1 %s\n run2 %s", k, b1, w2[k])
		}
	}
}

// TestEntryCodecRoundTrip checks that every persisted decision of the
// n=2..4 sweep re-encodes byte-identically after a decode — the
// stability the append-only journal format depends on.
func TestEntryCodecRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	analyzeInto(t, st, 4)

	count := 0
	st.Cache().Range(func(e engine.Entry) bool {
		count++
		b1, err := encodeEntry(e)
		if err != nil {
			t.Fatalf("encode %+v: %v", e, err)
		}
		dec, err := decodeEntry(bytes.TrimSuffix(b1, []byte("\n")))
		if err != nil {
			t.Fatalf("decode %s: %v", b1, err)
		}
		b2, err := encodeEntry(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("entry not byte-stable:\n first  %s\n second %s", b1, b2)
		}
		return true
	})
	if count == 0 {
		t.Fatal("no entries to round-trip")
	}
}

// TestCorruptedJournalTruncates writes decisions, corrupts the journal
// tail, and checks that Open keeps the good prefix, physically truncates
// the file, and appends cleanly afterwards.
func TestCorruptedJournalTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	analyzeInto(t, st, 3)
	_, _, entries := st.Cache().Stats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	jpath := path + journalSuffix
	good, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn final record: a prefix of a valid line, no newline.
	torn := append(append([]byte{}, good...), []byte(`{"e":{"fp":"00`)...)
	if err := os.WriteFile(jpath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Loaded; got != entries {
		t.Fatalf("loaded %d decisions from torn journal, want %d", got, entries)
	}
	if fi, err := os.Stat(jpath); err != nil || fi.Size() != int64(len(good)) {
		t.Fatalf("journal not truncated to good prefix: size %d, want %d (err %v)",
			fiSize(fi), len(good), err)
	}
	// Appends after the truncation must land on a clean line boundary.
	analyzeInto(t, st2, 4)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.Stats().Loaded; got <= entries {
		t.Fatalf("post-truncation appends lost: loaded %d, want > %d", got, entries)
	}
}

func fiSize(fi os.FileInfo) int64 {
	if fi == nil {
		return -1
	}
	return fi.Size()
}

// TestCorruptedMidRecordDropsTail flips a byte inside a middle record:
// the load must keep everything before it and drop it and the rest.
func TestCorruptedMidRecordDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	analyzeInto(t, st, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	jpath := path + journalSuffix
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// lines: header, then records, then one empty trailer from SplitAfter.
	records := len(lines) - 2
	if records < 3 {
		t.Fatalf("need >= 3 records, have %d", records)
	}
	victim := 1 + records/2
	// Flip a byte inside the CRC-protected entry bytes.
	mid := len(lines[victim]) / 2
	lines[victim][mid] ^= 0x01
	if err := os.WriteFile(jpath, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := st2.Stats().Loaded, victim-1; got != want {
		t.Fatalf("loaded %d decisions after mid-file corruption, want %d", got, want)
	}
}

// TestCompact folds the journal into the snapshot: the journal resets to
// a bare header, the snapshot carries every decision, and a reopen
// warm-loads the full set. Compacting twice is stable, and the snapshot
// bytes are deterministic.
func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	analyzeInto(t, st, 4)
	_, _, entries := st.Cache().Stats()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	snap1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	snap2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Error("snapshot bytes not deterministic across compactions")
	}
	jfi, err := os.Stat(path + journalSuffix)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := json.Marshal(header{Format: Format, Version: Version})
	if jfi.Size() != int64(len(hb)+1) {
		t.Errorf("journal size after compact = %d, want bare header %d", jfi.Size(), len(hb)+1)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Loaded; got != entries {
		t.Fatalf("reopen after compact loaded %d, want %d", got, entries)
	}
}

// TestNewerVersionRefused ensures a file from a future format version is
// an error, not a silent truncation.
func TestNewerVersionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	hb, _ := json.Marshal(header{Format: Format, Version: Version + 1})
	if err := os.WriteFile(path+journalSuffix, append(hb, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a journal from a newer format version")
	}
}

// TestAlienFileRefused ensures a non-empty file without the store header
// — a stray file at the path, or a corrupted header over real records —
// is refused intact, never truncated to zero.
func TestAlienFileRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	jpath := path + journalSuffix
	stray := []byte("this is somebody else's file\nwith two lines\n")
	if err := os.WriteFile(jpath, stray, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a journal with an alien header")
	}
	got, err := os.ReadFile(jpath)
	if err != nil || !bytes.Equal(got, stray) {
		t.Fatalf("refused file was modified: %q (err %v)", got, err)
	}
	// A torn header (no newline ever made it to disk) is the one header
	// failure that IS a clean crash artifact: Open starts fresh.
	if err := os.WriteFile(jpath, []byte(`{"format":"repro-dec`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatalf("torn header must open fresh: %v", err)
	}
	st.Close()
}

// TestFlushMakesAppendsDurable checks Flush pushes queued appends to the
// file without closing the store.
func TestFlushMakesAppendsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	analyzeInto(t, st, 3)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	_, _, entries := st.Cache().Stats()
	got, _, err := readDecisions(path + journalSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != entries {
		t.Fatalf("journal holds %d decisions after Flush, want %d", len(got), entries)
	}
}
