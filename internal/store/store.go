package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/discern"
	"repro/internal/engine"
	"repro/internal/record"
)

// Format is the header tag identifying decision-store files.
const Format = "repro-decision-store"

// Version is the newest file-format version this package writes. Files
// with a newer version are refused (not silently truncated): they hold
// valid data from a newer build, which must not be destroyed.
const Version = 1

// journalSuffix names the journal file beside the snapshot path.
const journalSuffix = ".journal"

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the first line of snapshot and journal files.
type header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// entryJSON is the serialized decision. The fingerprint is hex-encoded:
// JSON numbers cannot carry 64 bits exactly.
type entryJSON struct {
	FP   string          `json:"fp"`
	Prop string          `json:"prop"`
	N    int             `json:"n"`
	OK   bool            `json:"ok"`
	W    json.RawMessage `json:"w,omitempty"`
}

// recordJSON is one non-header line: the entry bytes plus their CRC-32C.
type recordJSON struct {
	E json.RawMessage `json:"e"`
	C uint32          `json:"c"`
}

// encodeEntry renders e as one newline-terminated journal line.
func encodeEntry(e engine.Entry) ([]byte, error) {
	ej := entryJSON{FP: fmt.Sprintf("%016x", e.FP), Prop: string(e.Prop), N: e.N, OK: e.OK}
	var w any
	switch {
	case e.DiscernWitness != nil:
		w = e.DiscernWitness
	case e.RecordWitness != nil:
		w = e.RecordWitness
	}
	if w != nil {
		wb, err := json.Marshal(w)
		if err != nil {
			return nil, err
		}
		ej.W = wb
	}
	eb, err := json.Marshal(ej)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(recordJSON{E: eb, C: crc32.Checksum(eb, castagnoli)})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeEntry parses one record line, verifying the CRC and the
// decision's internal consistency (a positive decision must carry a
// witness of the right kind and level).
func decodeEntry(line []byte) (engine.Entry, error) {
	var rec recordJSON
	if err := json.Unmarshal(line, &rec); err != nil {
		return engine.Entry{}, err
	}
	if got := crc32.Checksum(rec.E, castagnoli); got != rec.C {
		return engine.Entry{}, fmt.Errorf("store: record CRC mismatch (%08x != %08x)", got, rec.C)
	}
	var ej entryJSON
	if err := json.Unmarshal(rec.E, &ej); err != nil {
		return engine.Entry{}, err
	}
	fp, err := strconv.ParseUint(ej.FP, 16, 64)
	if err != nil {
		return engine.Entry{}, fmt.Errorf("store: bad fingerprint %q: %w", ej.FP, err)
	}
	e := engine.Entry{FP: fp, Prop: engine.Property(ej.Prop), N: ej.N, OK: ej.OK}
	if e.N < 2 {
		return engine.Entry{}, fmt.Errorf("store: bad level n=%d", e.N)
	}
	switch e.Prop {
	case engine.Discerning:
		if e.OK {
			e.DiscernWitness = &discern.Witness{}
			err = json.Unmarshal(ej.W, e.DiscernWitness)
		}
	case engine.Recording:
		if e.OK {
			e.RecordWitness = &record.Witness{}
			err = json.Unmarshal(ej.W, e.RecordWitness)
		}
	default:
		return engine.Entry{}, fmt.Errorf("store: unknown property %q", ej.Prop)
	}
	if err != nil {
		return engine.Entry{}, err
	}
	if e.OK {
		wn := 0
		if e.DiscernWitness != nil {
			wn = e.DiscernWitness.N
		} else if e.RecordWitness != nil {
			wn = e.RecordWitness.N
		}
		if wn != e.N {
			return engine.Entry{}, fmt.Errorf("store: witness level %d does not match entry level %d", wn, e.N)
		}
	}
	return e, nil
}

// readDecisions loads the decisions of one store file, tolerating
// corruption: it returns every record up to (excluding) the first bad
// one, plus the byte length of that good prefix. A missing file, an
// empty file, or a torn (newline-less) header is zero decisions. A
// complete-but-alien header and a header from a newer Version are
// errors — such files must not be truncated or overwritten.
func readDecisions(path string) (entries []engine.Entry, goodLen int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	// readLine returns the next newline-terminated line. A final line
	// without its newline is a torn write — not a good record even if
	// it happens to parse — and reads as a clean end. Any other read
	// error is a real I/O failure and must abort the load: truncating
	// at that point would destroy records that are still fine on disk.
	readLine := func() ([]byte, bool, error) {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("store: reading %s: %w", path, err)
		}
		off += int64(len(line))
		return bytes.TrimSuffix(line, []byte("\n")), true, nil
	}

	hline, ok, err := readLine()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		// Empty file, or a header torn mid-write (no newline made it to
		// disk): nothing was ever durably stored, so zero decisions and
		// a goodLen of 0 are the truth.
		return nil, 0, nil
	}
	var h header
	if json.Unmarshal(hline, &h) != nil || h.Format != Format {
		// A complete first line that is not our header means this is
		// not (or no longer) a decision-store file — a stray file at
		// the path, or header corruption in place. Refuse rather than
		// truncate: the tail may still hold thousands of good records
		// (or someone else's data), and destroying them is worse than
		// asking the operator to move the file aside.
		return nil, 0, fmt.Errorf("store: %s has no decision-store header (refusing to overwrite; move the file aside to start fresh)", path)
	}
	if h.Version > Version {
		return nil, 0, fmt.Errorf("store: %s is format version %d, newer than this build's %d", path, h.Version, Version)
	}
	goodLen = off
	for {
		line, ok, err := readLine()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return entries, goodLen, nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			// Blank line: tolerate and keep it in the good prefix.
			goodLen = off
			continue
		}
		e, err := decodeEntry(line)
		if err != nil {
			return entries, goodLen, nil
		}
		entries = append(entries, e)
		goodLen = off
	}
}

// request kinds served by the flusher goroutine.
const (
	reqFlush = iota
	reqCompact
)

type request struct {
	kind int
	err  chan error
}

// Store is an open persistent decision store. It is safe for concurrent
// use. Construct with Open; the zero value is not usable.
type Store struct {
	path  string // snapshot file
	jpath string // journal file
	cache *engine.Cache

	queue chan engine.Entry
	reqs  chan request
	done  chan struct{} // closed when the flusher has exited

	// lifeMu guards closed. Sink sends and flusher requests hold it for
	// reading across their whole channel interaction, so Close (which
	// takes it for writing) cannot tear the channels down under them.
	lifeMu sync.RWMutex
	closed bool

	mu       sync.Mutex // guards the mutable fields below
	loaded   int
	appended int
	err      error // first journal I/O error, sticky

	// Owned by the flusher goroutine after Open returns.
	journal *os.File
	bw      *bufio.Writer
}

// Open opens (creating if absent) the decision store at path and
// warm-loads every previously persisted decision into a fresh cache,
// reachable via Cache. Corrupted tails of the snapshot or journal are
// skipped, and the journal is physically truncated to its last good
// record so appends resume cleanly. The returned store appends every
// decision the cache computes from now on, asynchronously, until Close.
func Open(path string) (*Store, error) {
	if path == "" {
		return nil, errors.New("store: empty path")
	}
	s := &Store{
		path:  path,
		jpath: path + journalSuffix,
		cache: engine.NewCache(),
		queue: make(chan engine.Entry, 256),
		reqs:  make(chan request),
		done:  make(chan struct{}),
	}

	snap, _, err := readDecisions(s.path)
	if err != nil {
		return nil, err
	}
	for _, e := range snap {
		s.cache.Insert(e)
	}
	jrnl, goodLen, err := readDecisions(s.jpath)
	if err != nil {
		return nil, err
	}
	// Journal entries overwrite snapshot entries: they are newer (and,
	// the deciders being deterministic, identical for identical keys).
	for _, e := range jrnl {
		s.cache.Insert(e)
	}
	// Count distinct decisions, not records: after a crash between
	// compact's snapshot rename and its journal reset, journal records
	// duplicate snapshot ones and collapse on Insert.
	_, _, s.loaded = s.cache.Stats()

	f, err := os.OpenFile(s.jpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() != goodLen {
		if err := f.Truncate(goodLen); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	s.journal = f
	s.bw = bufio.NewWriterSize(f, 1<<16)
	if goodLen == 0 {
		if err := s.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}

	s.cache.SetSink(s.enqueue)
	go s.flusher()
	return s, nil
}

// Cache returns the warm-loaded decision cache backed by this store.
// Install it on engines with engine.WithCache (repro.WithCache); every
// decision they compute is persisted automatically.
func (s *Store) Cache() *engine.Cache { return s.cache }

// Path returns the snapshot path the store was opened with.
func (s *Store) Path() string { return s.path }

// enqueue is the cache sink: it hands one newly computed decision to the
// flusher. It blocks only while the flusher is behind by a full queue.
func (s *Store) enqueue(e engine.Entry) {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if s.closed {
		return
	}
	s.queue <- e
}

// writeHeader writes (buffered) the format header at the journal's
// current position.
func (s *Store) writeHeader() error {
	hb, err := json.Marshal(header{Format: Format, Version: Version})
	if err != nil {
		return err
	}
	if _, err := s.bw.Write(append(hb, '\n')); err != nil {
		return err
	}
	return s.bw.Flush()
}

// setErr records the first journal I/O error.
func (s *Store) setErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the store's sticky journal I/O error, if any. Appends are
// best-effort after the first error; Close and Flush also report it.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// flusher owns the journal file: it drains the append queue and serves
// Flush/Compact requests until Close shuts the queue, then syncs and
// closes the file. Whenever the queue goes idle it pushes the write
// buffer to the OS, so a killed process (OOM, SIGKILL) loses at most
// the appends of one busy burst — only an OS crash can lose an idle
// tail, and Flush/Close close even that window with an fsync.
func (s *Store) flusher() {
	defer close(s.done)
	for {
		var (
			e      engine.Entry
			ok     bool
			req    request
			gotReq bool
		)
		select {
		case e, ok = <-s.queue:
		case req = <-s.reqs:
			gotReq = true
		default:
			// Queue idle: make the buffered appends visible to the OS
			// before blocking.
			if s.bw.Buffered() > 0 {
				s.setErr(s.bw.Flush())
			}
			select {
			case e, ok = <-s.queue:
			case req = <-s.reqs:
				gotReq = true
			}
		}
		if gotReq {
		drain:
			// Cover everything enqueued before the request.
			for {
				select {
				case e, ok := <-s.queue:
					if !ok {
						break drain
					}
					s.append(e)
				default:
					break drain
				}
			}
			switch req.kind {
			case reqFlush:
				req.err <- s.sync()
			case reqCompact:
				req.err <- s.compact()
			}
			continue
		}
		if !ok {
			s.setErr(s.bw.Flush())
			s.setErr(s.journal.Sync())
			s.setErr(s.journal.Close())
			return
		}
		s.append(e)
	}
}

// append journals one decision (buffered; errors are sticky).
func (s *Store) append(e engine.Entry) {
	line, err := encodeEntry(e)
	if err != nil {
		s.setErr(err)
		return
	}
	if _, err := s.bw.Write(line); err != nil {
		s.setErr(err)
		return
	}
	s.mu.Lock()
	s.appended++
	s.mu.Unlock()
}

// sync pushes the write buffer to the OS and the OS cache to disk.
func (s *Store) sync() error {
	if err := s.bw.Flush(); err != nil {
		s.setErr(err)
		return err
	}
	if err := s.journal.Sync(); err != nil {
		s.setErr(err)
		return err
	}
	return s.Err()
}

// compact rewrites the snapshot with the cache's current contents and
// resets the journal. Runs on the flusher goroutine. Crash-safety: the
// snapshot replacement is atomic (temp file + rename), and the journal
// is only reset afterwards — a crash between the two leaves journal
// entries that duplicate snapshot entries, which the next Open absorbs
// (Insert overwrites).
func (s *Store) compact() error {
	if err := s.sync(); err != nil {
		return err
	}
	var entries []engine.Entry
	s.cache.Range(func(e engine.Entry) bool {
		entries = append(entries, e)
		return true
	})
	// Deterministic snapshots: identical caches produce identical bytes.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.FP != b.FP {
			return a.FP < b.FP
		}
		if a.Prop != b.Prop {
			return a.Prop < b.Prop
		}
		return a.N < b.N
	})

	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	w := bufio.NewWriterSize(tmp, 1<<16)
	hb, err := json.Marshal(header{Format: Format, Version: Version})
	if err == nil {
		_, err = w.Write(append(hb, '\n'))
	}
	for i := 0; err == nil && i < len(entries); i++ {
		var line []byte
		if line, err = encodeEntry(entries[i]); err == nil {
			_, err = w.Write(line)
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), s.path)
	}
	if err != nil {
		return err
	}
	syncDir(dir)

	// Reset the journal to a bare header; appends continue after it.
	if err := s.journal.Truncate(0); err != nil {
		s.setErr(err)
		return err
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		s.setErr(err)
		return err
	}
	s.bw.Reset(s.journal)
	if err := s.writeHeader(); err != nil {
		s.setErr(err)
		return err
	}
	if err := s.journal.Sync(); err != nil {
		s.setErr(err)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// request round-trips one control request to the flusher.
func (s *Store) do(kind int) error {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if s.closed {
		return errors.New("store: closed")
	}
	req := request{kind: kind, err: make(chan error, 1)}
	s.reqs <- req
	return <-req.err
}

// Flush drains pending appends and syncs the journal to disk.
func (s *Store) Flush() error { return s.do(reqFlush) }

// Compact folds the journal (and any prior snapshot) into a freshly
// written snapshot — atomically, via temp file + rename — and resets the
// journal to empty. Load time and disk use shrink to one record per
// distinct decision.
func (s *Store) Compact() error { return s.do(reqCompact) }

// Close stops persisting, drains and syncs the journal, and closes it.
// Decisions the cache computes after Close are not persisted. Close is
// idempotent; it returns the store's sticky I/O error, if any.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return s.Err()
	}
	s.closed = true
	s.lifeMu.Unlock()
	s.cache.SetSink(nil)
	close(s.queue)
	<-s.done
	return s.Err()
}

// Stats describes the store's persistence state.
type Stats struct {
	// Path is the snapshot path (the journal is Path + ".journal").
	Path string `json:"path"`
	// Loaded counts the decisions warm-loaded at Open.
	Loaded int `json:"loaded"`
	// Appended counts the decisions journaled since Open.
	Appended int `json:"appended"`
	// SnapshotBytes and JournalBytes are the current file sizes (0 when
	// the file does not exist yet).
	SnapshotBytes int64 `json:"snapshotBytes"`
	JournalBytes  int64 `json:"journalBytes"`
}

// Stats reports the store's current persistence counters and file sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{Path: s.path, Loaded: s.loaded, Appended: s.appended}
	s.mu.Unlock()
	if fi, err := os.Stat(s.path); err == nil {
		st.SnapshotBytes = fi.Size()
	}
	if fi, err := os.Stat(s.jpath); err == nil {
		st.JournalBytes = fi.Size()
	}
	return st
}
