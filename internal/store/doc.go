// Package store persists engine decision caches across processes: every
// memoized level decision (one propKey → propResult entry of
// internal/engine.Cache, in its exported engine.Entry form) is written to
// a disk-backed store and warm-loaded on the next Open, so the
// exponential discerning/recording searches are paid once per type and
// level, ever, rather than once per process.
//
// # On-disk layout
//
// A store at path P owns two files:
//
//   - P — the compacted snapshot, rewritten atomically (write to a
//     temporary file in the same directory, fsync, rename) by Compact;
//   - P.journal — the append-only journal receiving every decision
//     computed since the last compaction.
//
// Both files share one line-oriented format: a header line
// {"format":"repro-decision-store","version":1} followed by one record
// per line, {"e":<entry>,"c":<crc32c of the entry bytes>}. The CRC makes
// corruption detection independent of JSON syntax: a torn tail from a
// crash, a bit flip, or a truncated copy is caught at load time, and the
// load keeps every record up to the first bad one (for the journal, the
// file is also physically truncated back to that point so appends resume
// on a clean boundary). A record only counts as good if its trailing
// newline made it to disk.
//
// # Concurrency and ownership
//
// Writes are asynchronous: the cache's sink hands newly computed
// decisions to a flusher goroutine owning the journal file, so deciders
// never block on disk. Close drains and syncs the journal; Flush and
// Compact are available mid-run. One process at a time may own a store
// path (the -cache-file contract of the cmd tools) — concurrent writers
// would interleave journal lines. Within the owning process a *Store is
// safe for concurrent use.
//
// # Byte-stability guarantees
//
// Snapshot bytes are deterministic for a given set of decisions (entries
// are sorted before writing), and the witness JSON codecs round-trip
// byte-identically, so two stores holding the same decisions compact to
// identical snapshot files.
package store
