package trace

import (
	"strings"
	"testing"

	"repro/internal/schedule"
)

func TestRender(t *testing.T) {
	s := schedule.Schedule{
		schedule.Step(0),
		schedule.Crash(1),
		schedule.Step(1),
	}
	out := Render(s, []Annotation{{Index: 0, Text: "opR -> s"}}, []int{1, 1})
	for _, want := range []string{"1. p0", "opR -> s", "2. c1", "CRASH", "decisions: p0=1 p1=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderNoDecisions(t *testing.T) {
	out := Render(schedule.Steps(0, 1), nil, nil)
	if strings.Contains(out, "decisions") {
		t.Error("decisions footer should be absent")
	}
}

func TestSummary(t *testing.T) {
	s := schedule.Schedule{
		schedule.Step(0),
		schedule.Crash(1),
		schedule.Crash(1),
		schedule.Step(2),
		schedule.Crash(2),
	}
	got := Summary(s)
	for _, want := range []string{"5 events", "2 steps", "3 crashes", "c1×2", "c2×1"} {
		if !strings.Contains(got, want) {
			t.Errorf("Summary missing %q in %q", want, got)
		}
	}
}

func TestSummaryCrashFree(t *testing.T) {
	got := Summary(schedule.Steps(0, 1, 2))
	if strings.Contains(got, "(") {
		t.Errorf("crash-free summary should have no per-process section: %q", got)
	}
}
