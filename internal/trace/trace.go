package trace

import (
	"fmt"
	"strings"

	"repro/internal/schedule"
)

// Annotation attaches free-form text to an event index (for example the
// operation applied and the response received).
type Annotation struct {
	Index int
	Text  string
}

// Render formats a schedule with optional per-event annotations and a
// decisions footer, one event per line:
//
//  1. p0        write input
//  2. c1        CRASH
//     ...
//     decisions: p0=1 p1=1
func Render(s schedule.Schedule, annotations []Annotation, decisions []int) string {
	notes := make(map[int]string, len(annotations))
	for _, a := range annotations {
		if a.Text != "" {
			notes[a.Index] = a.Text
		}
	}
	var b strings.Builder
	for i, e := range s {
		fmt.Fprintf(&b, "%4d. %-4s", i+1, e.String())
		if e.Crash {
			b.WriteString("  CRASH")
		}
		if note, ok := notes[i]; ok {
			b.WriteString("  ")
			b.WriteString(note)
		}
		b.WriteByte('\n')
	}
	if decisions != nil {
		b.WriteString("decisions:")
		for p, d := range decisions {
			fmt.Fprintf(&b, " p%d=%d", p, d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary renders one-line statistics of a schedule: event, step and
// crash counts plus per-process crash counts.
func Summary(s schedule.Schedule) string {
	steps := 0
	crashesByProc := make(map[int]int)
	maxP := -1
	for _, e := range s {
		if e.P > maxP {
			maxP = e.P
		}
		if e.Crash {
			crashesByProc[e.P]++
		} else {
			steps++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d events: %d steps, %d crashes", len(s), steps, len(s)-steps)
	if len(crashesByProc) > 0 {
		b.WriteString(" (")
		first := true
		for p := 0; p <= maxP; p++ {
			if c, ok := crashesByProc[p]; ok {
				if !first {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "c%d×%d", p, c)
				first = false
			}
		}
		b.WriteString(")")
	}
	return b.String()
}
