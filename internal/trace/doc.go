// Package trace renders executions for humans: annotated event logs of
// simulator runs and model-checker counterexamples, in the paper's
// notation (steps p_i, crashes c_i). Rendering is pure formatting —
// deterministic for a given execution and safe for concurrent use.
package trace
