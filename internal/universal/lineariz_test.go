package universal

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lineariz"
	"repro/internal/spec"
	"repro/internal/types"
)

// TestUniversalHistoriesLinearizable records real-time intervals around
// concurrent Invoke calls on a universal object and verifies the history
// with the Wing-Gong checker — an independent certificate that the
// log-based construction is linearizable (the construction's own replay
// order is not consulted).
func TestUniversalHistoriesLinearizable(t *testing.T) {
	ft := types.FetchAdd(16)
	faa, _ := ft.OpByName("FAA")
	const (
		procs = 3
		each  = 6
	)
	u, err := New(ft, 0, procs)
	if err != nil {
		t.Fatal(err)
	}

	var clock, id int64
	var mu sync.Mutex
	var ops []lineariz.Op
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				inv := atomic.AddInt64(&clock, 1)
				resp, err := u.Invoke(p, faa)
				if err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
				rsp := atomic.AddInt64(&clock, 1)
				mu.Lock()
				ops = append(ops, lineariz.Op{
					ID: int(atomic.AddInt64(&id, 1)), Proc: p,
					Op: faa, Resp: resp, Invoke: inv, Respond: rsp,
				})
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	res, err := lineariz.Check(lineariz.History{Type: ft, Init: 0, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("universal object produced a non-linearizable history")
	}
	if len(res.Order) != procs*each {
		t.Errorf("linearization covers %d of %d ops", len(res.Order), procs*each)
	}
}

// TestUniversalQueueHistoryLinearizable repeats the certificate for a
// queue (non-commutative operations make linearizability harder to fake).
func TestUniversalQueueHistoryLinearizable(t *testing.T) {
	q := types.Queue(3)
	u, err := New(q, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	opNames := []string{"enq0", "enq1", "deq"}
	var opIDs []spec.Op
	for _, n := range opNames {
		o, _ := q.OpByName(n)
		opIDs = append(opIDs, o)
	}

	var clock, id int64
	var mu sync.Mutex
	var ops []lineariz.Op
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				o := opIDs[(p+k)%len(opIDs)]
				inv := atomic.AddInt64(&clock, 1)
				resp, err := u.Invoke(p, o)
				if err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
				rsp := atomic.AddInt64(&clock, 1)
				mu.Lock()
				ops = append(ops, lineariz.Op{
					ID: int(atomic.AddInt64(&id, 1)), Proc: p,
					Op: o, Resp: resp, Invoke: inv, Respond: rsp,
				})
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	res, err := lineariz.Check(lineariz.History{Type: q, Init: 0, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("universal queue produced a non-linearizable history")
	}
}
