package universal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

func mustNew(t *testing.T, ft *spec.FiniteType, init spec.Value, n int) *Universal {
	t.Helper()
	u, err := New(ft, init, n)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 0, 2); err == nil {
		t.Error("nil type accepted")
	}
	if _, err := New(types.TestAndSet(), 99, 2); err == nil {
		t.Error("bad init accepted")
	}
	if _, err := New(types.TestAndSet(), 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSequentialSemantics(t *testing.T) {
	// A universal queue must behave exactly like the sequential queue.
	q := types.Queue(2)
	enq0, _ := q.OpByName("enq0")
	enq1, _ := q.OpByName("enq1")
	deq, _ := q.OpByName("deq")
	u := mustNew(t, q, 0, 1)

	apply := func(op spec.Op) spec.Response {
		r, err := u.Invoke(0, op)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	apply(enq1)
	apply(enq0)
	if r := apply(deq); r != 1 {
		t.Errorf("first deq = %d, want 1 (FIFO)", r)
	}
	if r := apply(deq); r != 0 {
		t.Errorf("second deq = %d, want 0", r)
	}
	if r := apply(deq); r != 99 {
		t.Errorf("empty deq = %d, want 99", r)
	}
	if got := u.ft.ValueName(u.Value()); got != "q" {
		t.Errorf("final value = %s, want empty queue", got)
	}
}

func TestInvokeArgErrors(t *testing.T) {
	u := mustNew(t, types.TestAndSet(), 0, 2)
	if _, err := u.Invoke(5, 0); err == nil {
		t.Error("bad pid accepted")
	}
	if _, err := u.Invoke(0, 99); err == nil {
		t.Error("bad op accepted")
	}
	if _, _, err := u.RecoverSteps(9, -1); err == nil {
		t.Error("bad pid accepted by Recover")
	}
}

// TestConcurrentLinearizability hammers a universal fetch-and-add from
// many goroutines and verifies every response against a sequential replay
// of the deduplicated log — the definition of linearizability for this
// log-based construction.
func TestConcurrentLinearizability(t *testing.T) {
	const (
		procs  = 6
		perOp  = 40
		modulo = 16
	)
	ft := types.FetchAdd(modulo)
	faa, _ := ft.OpByName("FAA")
	u := mustNew(t, ft, 0, procs)

	type obs struct {
		pid, seq int
		resp     spec.Response
	}
	var mu sync.Mutex
	var observed []obs

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 1; k <= perOp; k++ {
				r, err := u.Invoke(p, faa)
				if err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
				mu.Lock()
				observed = append(observed, obs{pid: p, seq: k, resp: r})
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	log := u.DedupedLog()
	if len(log) != procs*perOp {
		t.Fatalf("deduped log has %d entries, want %d", len(log), procs*perOp)
	}
	// Replay the log; record the response of each (pid, seq).
	want := make(map[[2]int]spec.Response, len(log))
	v := spec.Value(0)
	for _, e := range log {
		eff := ft.Apply(v, e.Op)
		want[[2]int{e.Pid, e.Seq}] = eff.Resp
		v = eff.Next
	}
	for _, o := range observed {
		if w, ok := want[[2]int{o.pid, o.seq}]; !ok {
			t.Errorf("p%d#%d missing from log", o.pid, o.seq)
		} else if w != o.resp {
			t.Errorf("p%d#%d observed %d, log says %d", o.pid, o.seq, o.resp, w)
		}
	}
	// Each process's operations must appear in its program order.
	lastSeq := make([]int, procs)
	for _, e := range log {
		if e.Seq != lastSeq[e.Pid]+1 {
			t.Errorf("p%d operations out of order: #%d after #%d", e.Pid, e.Seq, lastSeq[e.Pid])
		}
		lastSeq[e.Pid] = e.Seq
	}
}

// TestCrashRecoveryDetectability crashes invocations at every possible
// step boundary and checks the detectability contract: after the crash,
// Recover either reports "no pending operation" (the crash hit before the
// announce) or completes the operation with a response consistent with
// the log — and the operation appears in the log AT MOST once.
func TestCrashRecoveryDetectability(t *testing.T) {
	ft := types.FetchAdd(8)
	faa, _ := ft.OpByName("FAA")

	for crashAt := 0; crashAt < 10; crashAt++ {
		u := mustNew(t, ft, 0, 2)
		// p1 applies one op cleanly first, so the log is nonempty.
		if _, err := u.Invoke(1, faa); err != nil {
			t.Fatal(err)
		}
		// p0 crashes after crashAt steps.
		_, err := u.InvokeSteps(0, faa, crashAt)
		if err == nil {
			continue // budget was enough: no crash at this boundary
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAt=%d: unexpected error %v", crashAt, err)
		}
		// Recover: must resolve the pending op (if it was announced).
		resp, pending, err := u.Recover(0)
		if err != nil {
			t.Fatalf("crashAt=%d: recover: %v", crashAt, err)
		}
		log := u.DedupedLog()
		count := 0
		for _, e := range log {
			if e.Pid == 0 {
				count++
			}
		}
		if pending {
			if count != 1 {
				t.Errorf("crashAt=%d: p0 has %d log entries after recovery, want 1", crashAt, count)
			}
			// Response must match replay.
			v := spec.Value(0)
			for _, e := range log {
				eff := ft.Apply(v, e.Op)
				if e.Pid == 0 {
					if eff.Resp != resp {
						t.Errorf("crashAt=%d: recovered resp %d, log says %d", crashAt, resp, eff.Resp)
					}
					break
				}
				v = eff.Next
			}
		} else if count != 0 {
			t.Errorf("crashAt=%d: no pending op reported but %d log entries", crashAt, count)
		}
	}
}

// TestCrashStormWithConcurrency mixes crashing and non-crashing
// invocations across goroutines, then verifies global log consistency.
func TestCrashStormWithConcurrency(t *testing.T) {
	ft := types.Swap(4)
	u := mustNew(t, ft, 0, 4)
	ops := make([]spec.Op, 0, 4)
	for i := 0; i < 4; i++ {
		op, _ := ft.OpByName(fmt.Sprintf("swap%d", i))
		ops = append(ops, op)
	}

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for k := 0; k < 30; k++ {
				op := ops[rng.Intn(len(ops))]
				if rng.Intn(3) == 0 {
					// Crash-prone invocation, then recover until done.
					_, err := u.InvokeSteps(p, op, rng.Intn(4))
					for errors.Is(err, ErrCrashed) {
						_, _, err = u.RecoverSteps(p, rng.Intn(4)+1)
					}
					if err != nil {
						t.Errorf("p%d: %v", p, err)
						return
					}
				} else {
					if _, err := u.Invoke(p, op); err != nil {
						t.Errorf("p%d: %v", p, err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()

	// Global consistency: per-process seq numbers strictly increase and
	// are unique in the deduplicated log.
	seen := make(map[[2]int]bool)
	last := make(map[int]int)
	for _, e := range u.DedupedLog() {
		k := [2]int{e.Pid, e.Seq}
		if seen[k] {
			t.Fatalf("duplicate entry %v in deduped log", k)
		}
		seen[k] = true
		if e.Seq <= last[e.Pid] {
			t.Fatalf("p%d: seq %d after %d", e.Pid, e.Seq, last[e.Pid])
		}
		last[e.Pid] = e.Seq
	}
}

// TestHelpingCompletesCrashedOps: an operation announced by a crashed
// process must be finished by OTHER processes' helping, without the
// crashed process ever recovering.
func TestHelpingCompletesCrashedOps(t *testing.T) {
	ft := types.FetchAdd(8)
	faa, _ := ft.OpByName("FAA")
	u := mustNew(t, ft, 0, 2)

	// p0 announces and crashes immediately after the announce
	// (1 step = the announce write, crash on the first drive step).
	if _, err := u.InvokeSteps(0, faa, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("expected announce-then-crash, got %v", err)
	}
	// p1 runs a few operations; the helping rule must log p0's op.
	for k := 0; k < 4; k++ {
		if _, err := u.Invoke(1, faa); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, e := range u.DedupedLog() {
		if e.Pid == 0 {
			found = true
		}
	}
	if !found {
		t.Error("helping did not complete the crashed process's operation")
	}
	// And p0's recovery must now return the response without new log
	// entries.
	before := len(u.DedupedLog())
	_, pending, err := u.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if !pending {
		t.Error("recovery should report the completed pending op")
	}
	if after := len(u.DedupedLog()); after != before {
		t.Errorf("recovery grew the log from %d to %d entries", before, after)
	}
}

// TestConsensusCell checks the cell primitive directly.
func TestConsensusCell(t *testing.T) {
	var c ConsensusCell
	if _, ok := c.Peek(); ok {
		t.Error("fresh cell should be undecided")
	}
	a := Entry{Pid: 1, Seq: 1, Op: 0}
	b := Entry{Pid: 2, Seq: 1, Op: 1}
	if got := c.Decide(a); got != a {
		t.Errorf("first decide = %+v", got)
	}
	if got := c.Decide(b); got != a {
		t.Errorf("second decide = %+v, want first winner", got)
	}
	if v, ok := c.Peek(); !ok || v != a {
		t.Errorf("peek = %+v/%v", v, ok)
	}
}

// TestUniversalOverEveryZooType sanity-runs the construction over each
// zoo type with a couple of processes.
func TestUniversalOverEveryZooType(t *testing.T) {
	for _, ft := range []*spec.FiniteType{
		types.Register(2), types.TestAndSet(), types.Queue(2),
		types.CompareAndSwap(2), types.Tnn(3, 1), types.StickyBit(),
	} {
		u := mustNew(t, ft, 0, 2)
		var wg sync.WaitGroup
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(p + 7)))
				for k := 0; k < 20; k++ {
					op := spec.Op(rng.Intn(ft.NumOps()))
					if _, err := u.Invoke(p, op); err != nil {
						t.Errorf("%s p%d: %v", ft.Name(), p, err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		if got := len(u.DedupedLog()); got != 40 {
			t.Errorf("%s: log has %d entries, want 40", ft.Name(), got)
		}
	}
}
