// Package universal implements a recoverable, linearizable universal
// construction: a shared object of ANY deterministic finite type, usable
// by n crash-prone processes, built from recoverable consensus objects
// and non-volatile registers.
//
// The paper's introduction cites two universality results for the
// recoverable setting: Berryhill-Golab-Tripunitara (simultaneous crashes)
// and Delporte-Gallet-Fatourou-Fauconnier-Ruppert (individual crashes),
// the latter providing detectability: after a crash, the invoking process
// can tell whether its interrupted operation linearized and, if so,
// obtain its response. This package reproduces that functionality:
//
//   - the shared state is an unbounded log of slots, each decided by a
//     recoverable consensus object (package-provided ConsensusCell, which
//     stands in for "any object with recoverable consensus number >= n",
//     e.g. compare-and-swap per the deciders in this repository);
//   - a process announces its operation in a non-volatile announce array
//     and then drives the log forward, helping announced operations of
//     other processes in round-robin slot order (Herlihy-style helping,
//     which yields wait-freedom);
//   - every piece of process-local progress state is recomputable from
//     the log and announce array, so a crashed process recovers by
//     re-scanning: if its announced (pid, seq) pair is in the log, the
//     operation linearized and its response is obtained by replay
//     (detectability); otherwise it re-drives the log.
//
// Crashes are simulated by abandoning an Invoke mid-flight (the test
// harness bounds the number of shared-memory steps); all volatile state
// is function-local by construction.
package universal
