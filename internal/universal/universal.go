package universal

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/spec"
)

// Entry is a log entry: process pid's seq-th operation, applying op.
type Entry struct {
	Pid int
	Seq int
	Op  spec.Op
}

// ConsensusCell is a recoverable consensus object over Entry proposals:
// the first proposal wins and every later (or repeated) proposal returns
// the winner. Decide is atomic and idempotent, so a process that crashed
// after proposing can simply propose again — this is exactly the
// behaviour a compare-and-swap object (recoverable consensus number
// infinity in this repository's analyses) provides.
type ConsensusCell struct {
	mu      sync.Mutex
	decided bool
	value   Entry
}

// Decide proposes v and returns the cell's decision.
func (c *ConsensusCell) Decide(v Entry) Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.decided {
		c.decided = true
		c.value = v
	}
	return c.value
}

// Peek returns the decision without proposing.
func (c *ConsensusCell) Peek() (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value, c.decided
}

// announce is one slot of the non-volatile announce array.
type announce struct {
	mu      sync.Mutex
	pending bool
	seq     int
	op      spec.Op
}

// Universal is a recoverable wait-free linearizable implementation of one
// object of an arbitrary deterministic finite type, shared by n
// processes.
type Universal struct {
	ft   *spec.FiniteType
	init spec.Value
	n    int

	ann []announce

	mu   sync.Mutex
	log  []*ConsensusCell
	head int // first slot not known to be decided (monotonic hint)

	// Replay cache over the decided log prefix. Decided slots are
	// immutable, so the cache only ever extends. Guarded by cacheMu.
	cacheMu    sync.Mutex
	cacheUpTo  int                     // slots [0, cacheUpTo) are folded in
	cacheVal   spec.Value              // abstract value after the cached prefix
	cacheResp  map[Entry]spec.Response // (pid,seq) -> linearized response
	cacheSlot  map[Entry]int           // (pid,seq) -> first slot index
	cacheSeen  map[Entry]bool          // dedup across helping races
	cacheReady bool
}

// ErrCrashed is returned by step-bounded invocations when the budget is
// exhausted (the test harness's crash injection).
var ErrCrashed = errors.New("universal: crashed (step budget exhausted)")

// New builds a universal object of type ft with the given initial value
// for n processes.
func New(ft *spec.FiniteType, init spec.Value, n int) (*Universal, error) {
	if ft == nil {
		return nil, errors.New("universal: nil type")
	}
	if int(init) < 0 || int(init) >= ft.NumValues() {
		return nil, fmt.Errorf("universal: initial value %d out of range", int(init))
	}
	if n < 1 {
		return nil, fmt.Errorf("universal: need n >= 1 processes, got %d", n)
	}
	return &Universal{ft: ft, init: init, n: n, ann: make([]announce, n)}, nil
}

// Type returns the implemented type.
func (u *Universal) Type() *spec.FiniteType { return u.ft }

// slot returns the i-th consensus cell, growing the log as needed.
func (u *Universal) slot(i int) *ConsensusCell {
	u.mu.Lock()
	defer u.mu.Unlock()
	for len(u.log) <= i {
		u.log = append(u.log, &ConsensusCell{})
	}
	return u.log[i]
}

// Invoke applies op as process pid's next operation and returns its
// response. It is the unbounded (crash-free) form of InvokeSteps.
func (u *Universal) Invoke(pid int, op spec.Op) (spec.Response, error) {
	return u.InvokeSteps(pid, op, -1)
}

// InvokeSteps is Invoke with a crash budget: every shared-memory step
// (announce write, cell decision, log scan unit) consumes one step; when
// the budget reaches zero the invocation "crashes" with ErrCrashed,
// leaving all non-volatile state behind. A subsequent Recover or
// InvokeSteps by the same process resumes correctly. budget < 0 means
// unbounded.
func (u *Universal) InvokeSteps(pid int, op spec.Op, budget int) (spec.Response, error) {
	if pid < 0 || pid >= u.n {
		return 0, fmt.Errorf("universal: pid %d out of range", pid)
	}
	if int(op) < 0 || int(op) >= u.ft.NumOps() {
		return 0, fmt.Errorf("universal: op %d out of range", int(op))
	}
	steps := newBudget(budget)

	// Detectability first: if a previous invocation of this process was
	// interrupted, finish (or discover the completion of) that one
	// instead of starting a new operation. Callers that want the old
	// response use Recover; Invoke of a new op requires the previous one
	// to be resolved, which resolveAnnounced guarantees.
	if _, _, err := u.resolveAnnounced(pid, steps); err != nil {
		return 0, err
	}

	// Announce the new operation with the next sequence number.
	seq, err := u.announceOp(pid, op, steps)
	if err != nil {
		return 0, err
	}
	return u.drive(pid, seq, op, steps)
}

// Recover resolves the state of process pid after a crash: if pid has an
// announced operation, Recover drives it to completion (helping may
// already have finished it) and returns (resp, true, nil). If pid has no
// pending operation, it returns (0, false, nil).
func (u *Universal) Recover(pid int) (spec.Response, bool, error) {
	return u.RecoverSteps(pid, -1)
}

// RecoverSteps is Recover with a crash budget.
func (u *Universal) RecoverSteps(pid int, budget int) (spec.Response, bool, error) {
	if pid < 0 || pid >= u.n {
		return 0, false, fmt.Errorf("universal: pid %d out of range", pid)
	}
	steps := newBudget(budget)
	return u.resolveAnnounced(pid, steps)
}

// announceOp writes the (seq, op) announce record for pid.
func (u *Universal) announceOp(pid int, op spec.Op, steps *stepBudget) (int, error) {
	if err := steps.take(); err != nil {
		return 0, err
	}
	a := &u.ann[pid]
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	a.op = op
	a.pending = true
	return a.seq, nil
}

// readAnnounce reads pid's announce record.
func (u *Universal) readAnnounce(pid int) (seq int, op spec.Op, pending bool) {
	a := &u.ann[pid]
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq, a.op, a.pending
}

// clearAnnounce marks pid's announced operation resolved (idempotent;
// guarded by seq so a stale clear cannot erase a newer announce).
func (u *Universal) clearAnnounce(pid, seq int) {
	a := &u.ann[pid]
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pending && a.seq == seq {
		a.pending = false
	}
}

// resolveAnnounced completes pid's announced operation if one is pending,
// returning its response.
func (u *Universal) resolveAnnounced(pid int, steps *stepBudget) (spec.Response, bool, error) {
	seq, op, pending := u.readAnnounce(pid)
	if !pending {
		return 0, false, nil
	}
	resp, err := u.drive(pid, seq, op, steps)
	if err != nil {
		return 0, true, err
	}
	return resp, true, nil
}

// drive pushes the log forward until (pid, seq, op) is in it, helping
// announced operations of other processes along the way, then replays the
// log to compute the response.
func (u *Universal) drive(pid, seq int, op spec.Op, steps *stepBudget) (spec.Response, error) {
	mine := Entry{Pid: pid, Seq: seq, Op: op}
	i := u.headHint()
	for {
		if err := steps.take(); err != nil {
			return 0, err
		}
		// Choose a proposal: help the announced operation of the process
		// owning this slot (round-robin), if it is still unlogged;
		// otherwise push our own.
		proposal := mine
		helpee := i % u.n
		if helpee != pid {
			if hseq, hop, hpending := u.readAnnounce(helpee); hpending {
				if _, found := u.find(helpee, hseq, i); !found {
					proposal = Entry{Pid: helpee, Seq: hseq, Op: hop}
				}
			}
		}
		// Skip proposals already in the log (helping races): re-deciding
		// an already-logged entry would double-apply it.
		if _, found := u.find(proposal.Pid, proposal.Seq, i); found {
			proposal = mine
		}
		if _, found := u.find(mine.Pid, mine.Seq, i); found {
			break // someone helped us into the log already
		}
		// Note: a helper must NOT clear the helpee's announce record —
		// the record is the helpee's only evidence of its interrupted
		// operation (detectability). Only the owner clears it, below.
		won := u.slot(i).Decide(proposal)
		if won == mine {
			break
		}
		i++
	}
	u.clearAnnounce(pid, seq)
	u.bumpHead(i)
	return u.replayFor(pid, seq)
}

// advanceCache folds newly decided contiguous slots into the replay
// cache and returns the cached state accessors. Must be called with
// cacheMu held.
func (u *Universal) advanceCacheLocked() {
	if !u.cacheReady {
		u.cacheVal = u.init
		u.cacheResp = make(map[Entry]spec.Response)
		u.cacheSlot = make(map[Entry]int)
		u.cacheSeen = make(map[Entry]bool)
		u.cacheReady = true
	}
	for {
		cell := u.peekSlot(u.cacheUpTo)
		if cell == nil {
			return
		}
		e, ok := cell.Peek()
		if !ok {
			return
		}
		key := Entry{Pid: e.Pid, Seq: e.Seq}
		if !u.cacheSeen[key] {
			u.cacheSeen[key] = true
			u.cacheSlot[key] = u.cacheUpTo
			eff := u.ft.Apply(u.cacheVal, e.Op)
			u.cacheResp[key] = eff.Resp
			u.cacheVal = eff.Next
		}
		u.cacheUpTo++
	}
}

// find reports whether (pid, seq) appears in the decided prefix of the
// log. It consults the replay cache first and scans any decided slots
// beyond the cached prefix.
func (u *Universal) find(pid, seq, limit int) (int, bool) {
	key := Entry{Pid: pid, Seq: seq}
	u.cacheMu.Lock()
	u.advanceCacheLocked()
	slot, ok := u.cacheSlot[key]
	upTo := u.cacheUpTo
	u.cacheMu.Unlock()
	if ok {
		return slot, true
	}
	// Scan the (possibly non-contiguous) decided slots beyond the cache.
	for i := upTo; i <= limit; i++ {
		cell := u.peekSlot(i)
		if cell == nil {
			return 0, false
		}
		if e, decided := cell.Peek(); decided && e.Pid == pid && e.Seq == seq {
			return i, true
		}
	}
	return 0, false
}

// peekSlot returns slot i if it exists (without growing the log).
func (u *Universal) peekSlot(i int) *ConsensusCell {
	u.mu.Lock()
	defer u.mu.Unlock()
	if i < len(u.log) {
		return u.log[i]
	}
	return nil
}

// headHint returns the monotonic decided-prefix hint.
func (u *Universal) headHint() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.head
}

// bumpHead advances the decided-prefix hint (performance only).
func (u *Universal) bumpHead(i int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if i > u.head {
		u.head = i
	}
}

// replayFor returns the linearized response of (pid, seq) from the
// replay cache (the cache folds the decided prefix through the
// sequential specification, deduplicating by (pid, seq): two helpers can
// race the same announced operation into two different slots, and the
// operation linearizes at its FIRST occurrence only; every process uses
// the same rule, so all observers agree).
func (u *Universal) replayFor(pid, seq int) (spec.Response, error) {
	key := Entry{Pid: pid, Seq: seq}
	u.cacheMu.Lock()
	defer u.cacheMu.Unlock()
	u.advanceCacheLocked()
	resp, ok := u.cacheResp[key]
	if !ok {
		return 0, fmt.Errorf("universal: entry (p%d,#%d) not in decided prefix", pid, seq)
	}
	return resp, nil
}

// Log returns the decided log prefix (for verification).
func (u *Universal) Log() []Entry {
	var out []Entry
	for i := 0; ; i++ {
		cell := u.peekSlot(i)
		if cell == nil {
			return out
		}
		e, ok := cell.Peek()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// DedupedLog returns the decided log prefix with helping-race duplicates
// removed — the linearization order of the implemented object.
func (u *Universal) DedupedLog() []Entry {
	seen := make(map[Entry]bool)
	var out []Entry
	for _, e := range u.Log() {
		key := Entry{Pid: e.Pid, Seq: e.Seq}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

// Value returns the current abstract value (the deduplicated decided log
// replayed through the sequential specification).
func (u *Universal) Value() spec.Value {
	v := u.init
	for _, e := range u.DedupedLog() {
		v = u.ft.Apply(v, e.Op).Next
	}
	return v
}

// stepBudget implements crash injection by bounding shared-memory steps.
type stepBudget struct {
	unbounded bool
	left      int
}

func newBudget(budget int) *stepBudget {
	if budget < 0 {
		return &stepBudget{unbounded: true}
	}
	return &stepBudget{left: budget}
}

func (b *stepBudget) take() error {
	if b.unbounded {
		return nil
	}
	if b.left == 0 {
		return ErrCrashed
	}
	b.left--
	return nil
}
