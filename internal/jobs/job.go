package jobs

import (
	"context"
	"sync"
	"time"
)

// subBuffer is the per-subscriber channel capacity. A subscriber that
// falls this far behind the live event stream is dropped (its channel is
// closed); SSE handlers recover by re-reading the job's terminal state.
const subBuffer = 256

// Job is one unit of asynchronous work. Its event stream is ordered and
// bounded: Publish appends to a replay ring and fans out to subscribers,
// and the final lifecycle event ("job.done" / "job.failed" /
// "job.canceled") always closes every subscriber channel.
type Job struct {
	id   string
	seq  int64 // submission order, fixed
	spec Spec
	mgr  *Manager

	mu        sync.Mutex
	state     State
	created   time.Time
	started   time.Time
	finished  time.Time
	err       error
	result    any
	cancelReq bool
	cancel    context.CancelFunc // set while running

	events  []Event // replay ring; events[0].Seq reveals dropped history
	nextSeq int64
	subs    map[int]chan Event
	subID   int
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the job's kind label.
func (j *Job) Kind() string { return j.spec.Kind }

// View is a JSON-ready snapshot of a job.
type View struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Label    string `json:"label,omitempty"`
	State    State  `json:"state"`
	Priority int    `json:"priority,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Error    string `json:"error,omitempty"`
	Result   any    `json:"result,omitempty"`
	// Events is the number of events published so far.
	Events int64 `json:"events"`
}

// View snapshots the job.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID: j.id, Kind: j.spec.Kind, Label: j.spec.Label, State: j.state,
		Priority: j.spec.Priority, Created: j.created.UTC().Format(time.RFC3339Nano),
		Events: j.nextSeq,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.state == StateDone {
		v.Result = j.result
	}
	return v
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Publish appends a progress event to the job's stream: into the bounded
// replay ring and to every live subscriber. Run functions call it to
// stream engine progress; the manager calls it for lifecycle events.
// Publishing to a terminal job is a no-op.
func (j *Job) Publish(kind string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.publishLocked(kind, data)
}

// publish is Publish without the terminal guard, for lifecycle events.
func (j *Job) publish(kind string, data any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(kind, data)
}

func (j *Job) publishLocked(kind string, data any) {
	j.nextSeq++
	e := Event{Seq: j.nextSeq, Kind: kind, Data: data}
	j.events = append(j.events, e)
	if limit := j.mgr.cfg.ReplayLimit; len(j.events) > limit {
		drop := len(j.events) - limit
		j.events = append(j.events[:0], j.events[drop:]...)
	}
	for id, ch := range j.subs {
		select {
		case ch <- e:
		default:
			// Slow subscriber: drop it rather than block the publisher.
			close(ch)
			delete(j.subs, id)
		}
	}
}

// Subscribe attaches to the job's event stream. It returns the buffered
// replay of events with Seq > afterSeq (pass 0 for all retained), a live
// channel, and a cancel function. The channel is closed after the
// terminal event is delivered, when the subscriber falls too far behind,
// or on cancel. Subscribing to an already-terminal job returns the
// replay and a closed channel.
func (j *Job) Subscribe(afterSeq int64) (replay []Event, ch <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.events {
		if e.Seq > afterSeq {
			replay = append(replay, e)
		}
	}
	c := make(chan Event, subBuffer)
	if j.state.Terminal() {
		close(c)
		return replay, c, func() {}
	}
	j.subID++
	id := j.subID
	j.subs[id] = c
	return replay, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if ch, ok := j.subs[id]; ok {
			close(ch)
			delete(j.subs, id)
		}
	}
}

// requestCancel flips the job toward cancellation. Queued jobs finalize
// immediately; running jobs get their context canceled and finalize when
// Run returns. Reports whether the job was non-terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelReq = true
	if j.state == StateRunning {
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	// Queued: finalize here; the worker skips it in start.
	j.finalizeLocked(StateCanceled, nil, context.Canceled)
	j.mu.Unlock()
	j.mgr.finalizeCounters(StateQueued, StateCanceled)
	j.mgr.remember(j.id)
	return true
}

// start transitions a popped job to running. It returns false when the
// job was canceled while queued (the worker then skips it).
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.publishLocked("job.running", nil)
	j.mu.Unlock()
	j.mgr.mu.Lock()
	j.mgr.queued--
	j.mgr.running++
	j.mgr.mu.Unlock()
	return true
}

// finish finalizes a running job from Run's outcome.
func (j *Job) finish(result any, err, ctxErr error) {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	to := StateDone
	switch {
	case err == nil:
		// Done even if cancellation raced a successful completion.
	case j.cancelReq || j.mgr.ctx.Err() != nil:
		to = StateCanceled
	default:
		to = StateFailed
		if ctxErr != nil {
			// Preserve the more precise deadline error when Run surfaced a
			// wrapped context error.
			err = ctxErr
		}
	}
	j.finalizeLocked(to, result, err)
	j.mu.Unlock()
	j.mgr.finalizeCounters(StateRunning, to)
	j.mgr.remember(j.id)
}

// finalizeLocked records the terminal state, publishes the terminal
// event and closes every subscriber channel. Caller holds j.mu.
func (j *Job) finalizeLocked(to State, result any, err error) {
	j.state = to
	j.finished = time.Now()
	j.result = result
	if to != StateDone {
		j.err = err
	} else {
		j.err = nil
	}
	data := map[string]any{"state": to}
	if j.err != nil {
		data["error"] = j.err.Error()
	}
	j.publishLocked("job."+string(to), data)
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
}
