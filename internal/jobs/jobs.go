package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Defaults for Config fields left at zero.
const (
	DefaultWorkers      = 2
	DefaultQueueLimit   = 64
	DefaultReplayLimit  = 256
	DefaultHistoryLimit = 128
	DefaultJobTimeout   = 5 * time.Minute
)

// Submission errors. Servers map ErrQueueFull to HTTP 429.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity — the backpressure signal.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("jobs: manager closed")
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: Queued -> Running -> one of the terminal states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress event of a job. Seq increases by 1 per event
// within a job, starting at 1, so subscribers can detect replay-buffer
// gaps. Terminal events have Kind "job.<terminal state>".
type Event struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"`
	Data any    `json:"data,omitempty"`
}

// Config tunes a Manager. Zero values select the defaults above.
type Config struct {
	// Workers is the number of jobs run concurrently.
	Workers int
	// QueueLimit bounds jobs waiting to run; Submit beyond it returns
	// ErrQueueFull.
	QueueLimit int
	// ReplayLimit bounds the per-job event replay buffer; older events
	// are dropped (subscribers see the gap via Seq).
	ReplayLimit int
	// HistoryLimit bounds how many finished jobs stay resolvable by ID.
	HistoryLimit int
	// DefaultTimeout applies to jobs submitted without one.
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.ReplayLimit <= 0 {
		c.ReplayLimit = DefaultReplayLimit
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = DefaultHistoryLimit
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = DefaultJobTimeout
	}
	return c
}

// Spec describes one job to Submit.
type Spec struct {
	// Kind labels the work ("analyze", "check", "theorem13", ...).
	Kind string
	// Label is a free-form description for job listings.
	Label string
	// Priority orders the queue: higher runs first; ties run in
	// submission order.
	Priority int
	// Timeout bounds the job's run; 0 selects Config.DefaultTimeout.
	Timeout time.Duration
	// Run does the work. It must honor ctx and may stream progress via
	// j.Publish. Its result (or error) becomes the job's terminal state.
	Run func(ctx context.Context, j *Job) (any, error)
}

// Stats is a snapshot of a Manager's counters for /v1/stats and
// /metrics.
type Stats struct {
	// Queued and Running are current gauge values.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Done, Failed, Canceled and Rejected are lifetime totals. Rejected
	// counts Submit calls refused by the queue bound.
	Done     uint64 `json:"done"`
	Failed   uint64 `json:"failed"`
	Canceled uint64 `json:"canceled"`
	Rejected uint64 `json:"rejected"`
}

// Manager is a bounded-queue asynchronous job runner: Submit enqueues by
// priority (rejecting with ErrQueueFull at capacity), a fixed pool of
// workers runs jobs under per-job contexts with timeouts, and every job
// fans progress events out to subscribers with a bounded replay buffer.
// Finished jobs stay resolvable by ID up to the history limit. All
// methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	jobs    map[string]*Job
	history []string // terminal job IDs, oldest first
	seq     int64
	queued  int
	running int
	closed  bool

	done, failed, canceled, rejected uint64

	wg sync.WaitGroup
}

// NewManager starts a manager with cfg's worker pool. Close releases it.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{cfg: cfg, ctx: ctx, cancel: cancel, jobs: make(map[string]*Job)}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit enqueues a job. It returns ErrQueueFull when the queue is at
// capacity (the caller should back off) and ErrClosed during shutdown.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if spec.Run == nil {
		return nil, fmt.Errorf("jobs: spec has no Run function")
	}
	if spec.Timeout <= 0 {
		spec.Timeout = m.cfg.DefaultTimeout
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.queued >= m.cfg.QueueLimit {
		m.rejected++
		return nil, ErrQueueFull
	}
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("j%06d", m.seq),
		seq:     m.seq,
		spec:    spec,
		mgr:     m,
		state:   StateQueued,
		created: time.Now(),
		subs:    make(map[int]chan Event),
	}
	m.jobs[j.id] = j
	heap.Push(&m.queue, j)
	m.queued++
	m.cond.Signal()
	j.publish("job.queued", nil)
	return j, nil
}

// Get resolves a job by ID (queued, running, or finished within the
// history limit).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: queued jobs finalize as
// canceled immediately, running jobs have their context canceled and
// finalize when Run returns. It reports whether the job was found in a
// non-terminal state.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	return j.requestCancel()
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Queued: m.queued, Running: m.running,
		Done: m.done, Failed: m.failed, Canceled: m.canceled, Rejected: m.rejected,
	}
}

// Close shuts the manager down: intake stops (Submit returns ErrClosed),
// queued jobs finalize as canceled, running jobs have their contexts
// canceled, and Close waits for the workers to finish — up to ctx's
// deadline, after which it returns ctx.Err() with workers still
// draining. Subscribers of every job see a terminal event and a closed
// channel.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
	} else {
		m.closed = true
		var drop []*Job
		for m.queue.Len() > 0 {
			drop = append(drop, heap.Pop(&m.queue).(*Job))
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		for _, j := range drop {
			j.requestCancel()
		}
		// Cancel running jobs via the shared parent context.
		m.cancel()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker runs jobs from the queue until the manager closes and drains.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queue.Len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.queue.Len() == 0 {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.queue).(*Job)
		m.mu.Unlock()
		m.run(j)
	}
}

// run executes one job and finalizes it.
func (m *Manager) run(j *Job) {
	ctx, cancel := context.WithTimeout(m.ctx, j.spec.Timeout)
	defer cancel()
	if !j.start(cancel) {
		// Canceled while queued (popped by Close or raced with Cancel).
		return
	}
	result, err := j.spec.Run(ctx, j)
	j.finish(result, err, ctx.Err())
}

// finalizeCounters moves the manager-side gauges for a job that left
// state from (queued/running) into terminal state to.
func (m *Manager) finalizeCounters(from, to State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch from {
	case StateQueued:
		m.queued--
	case StateRunning:
		m.running--
	}
	switch to {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceled++
	}
}

// remember appends a terminal job to the history ring, evicting the
// oldest finished job beyond the limit.
func (m *Manager) remember(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.history = append(m.history, id)
	for len(m.history) > m.cfg.HistoryLimit {
		delete(m.jobs, m.history[0])
		m.history = m.history[1:]
	}
}

// jobHeap orders jobs by priority (higher first), then submission order.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
