package jobs_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

func drain(t *testing.T, replay []jobs.Event, ch <-chan jobs.Event) []jobs.Event {
	t.Helper()
	out := append([]jobs.Event(nil), replay...)
	timeout := time.After(5 * time.Second)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, e)
		case <-timeout:
			t.Fatalf("event stream did not close; got %d events", len(out))
		}
	}
}

func TestJobLifecycleAndEvents(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close(context.Background())

	j, err := m.Submit(jobs.Spec{
		Kind: "demo",
		Run: func(ctx context.Context, j *jobs.Job) (any, error) {
			j.Publish("step", map[string]int{"n": 1})
			j.Publish("step", map[string]int{"n": 2})
			return "result", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	replay, ch, cancel := j.Subscribe(0)
	defer cancel()
	events := drain(t, replay, ch)

	var kinds []string
	lastSeq := int64(0)
	for _, e := range events {
		if e.Seq <= lastSeq {
			t.Fatalf("non-increasing seq: %+v after %d", e, lastSeq)
		}
		lastSeq = e.Seq
		kinds = append(kinds, e.Kind)
	}
	want := []string{"job.queued", "job.running", "step", "step", "job.done"}
	if len(kinds) != len(want) {
		t.Fatalf("got kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("got kinds %v, want %v", kinds, want)
		}
	}
	v := j.View()
	if v.State != jobs.StateDone || v.Result != "result" || v.Error != "" {
		t.Fatalf("view = %+v", v)
	}
	st := m.Stats()
	if st.Done != 1 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubscribeAfterTerminal(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close(context.Background())
	j, err := m.Submit(jobs.Spec{Kind: "demo", Run: func(context.Context, *jobs.Job) (any, error) {
		return nil, errors.New("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the terminal state via a live subscription...
	_, ch, cancel := j.Subscribe(0)
	drain(t, nil, ch)
	cancel()
	// ...then a late subscriber sees the full replay and a closed channel.
	replay, ch2, cancel2 := j.Subscribe(0)
	defer cancel2()
	events := drain(t, replay, ch2)
	if len(events) == 0 || events[len(events)-1].Kind != "job.failed" {
		t.Fatalf("late subscriber events: %+v", events)
	}
	if v := j.View(); v.State != jobs.StateFailed || v.Error != "boom" {
		t.Fatalf("view = %+v", v)
	}
}

func TestQueueFullRejects(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1, QueueLimit: 1})
	defer m.Close(context.Background())

	release := make(chan struct{})
	started := make(chan struct{})
	block := func(ctx context.Context, _ *jobs.Job) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := m.Submit(jobs.Spec{Kind: "block", Run: block}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Queue slot 1 of 1.
	if _, err := m.Submit(jobs.Spec{Kind: "wait", Run: func(context.Context, *jobs.Job) (any, error) {
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Submit(jobs.Spec{Kind: "over", Run: func(context.Context, *jobs.Job) (any, error) {
		return nil, nil
	}})
	if !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(release)
}

func TestPriorityOrdering(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close(context.Background())

	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit(jobs.Spec{Kind: "gate", Run: func(ctx context.Context, _ *jobs.Job) (any, error) {
		close(started)
		<-release
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	mk := func(name string, prio int) {
		if _, err := m.Submit(jobs.Spec{Kind: name, Priority: prio,
			Run: func(context.Context, *jobs.Job) (any, error) {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil, nil
			}}); err != nil {
			t.Fatal(err)
		}
	}
	mk("low", 0)
	mk("high", 5)
	mk("mid", 3)
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not finish; order=%v", order)
		}
		time.Sleep(time.Millisecond)
	}
	if order[0] != "high" || order[1] != "mid" || order[2] != "low" {
		t.Fatalf("execution order %v, want [high mid low]", order)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close(context.Background())

	started := make(chan struct{})
	running, err := m.Submit(jobs.Spec{Kind: "running", Run: func(ctx context.Context, _ *jobs.Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(jobs.Spec{Kind: "queued", Run: func(context.Context, *jobs.Job) (any, error) {
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	if !m.Cancel(queued.ID()) {
		t.Fatal("Cancel(queued) = false")
	}
	if st := queued.State(); st != jobs.StateCanceled {
		t.Fatalf("queued job state = %s", st)
	}
	if !m.Cancel(running.ID()) {
		t.Fatal("Cancel(running) = false")
	}
	_, ch, cancel := running.Subscribe(0)
	drain(t, nil, ch)
	cancel()
	if st := running.State(); st != jobs.StateCanceled {
		t.Fatalf("running job state = %s", st)
	}
	if m.Cancel(running.ID()) {
		t.Fatal("Cancel of terminal job reported true")
	}
	if st := m.Stats(); st.Canceled != 2 {
		t.Fatalf("canceled = %d, want 2", st.Canceled)
	}
}

func TestTimeoutFailsJob(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close(context.Background())
	j, err := m.Submit(jobs.Spec{Kind: "slow", Timeout: 20 * time.Millisecond,
		Run: func(ctx context.Context, _ *jobs.Job) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancel := j.Subscribe(0)
	drain(t, nil, ch)
	cancel()
	v := j.View()
	if v.State != jobs.StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if !errors.Is(context.DeadlineExceeded, context.DeadlineExceeded) || v.Error != context.DeadlineExceeded.Error() {
		t.Fatalf("error = %q", v.Error)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	started := make(chan struct{})
	if _, err := m.Submit(jobs.Spec{Kind: "block", Run: func(ctx context.Context, _ *jobs.Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(jobs.Spec{Kind: "queued", Run: func(context.Context, *jobs.Job) (any, error) {
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := queued.State(); st != jobs.StateCanceled {
		t.Fatalf("queued job after Close: %s", st)
	}
	if _, err := m.Submit(jobs.Spec{Kind: "late", Run: func(context.Context, *jobs.Job) (any, error) {
		return nil, nil
	}}); !errors.Is(err, jobs.ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
}

func TestReplayRingBounded(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1, ReplayLimit: 8})
	defer m.Close(context.Background())
	j, err := m.Submit(jobs.Spec{Kind: "chatty", Run: func(_ context.Context, j *jobs.Job) (any, error) {
		for i := 0; i < 100; i++ {
			j.Publish("tick", i)
		}
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancel := j.Subscribe(0)
	drain(t, nil, ch)
	cancel()
	replay, ch2, cancel2 := j.Subscribe(0)
	defer cancel2()
	drain(t, nil, ch2)
	if len(replay) > 8 {
		t.Fatalf("replay holds %d events, limit 8", len(replay))
	}
	// The terminal event must be retained.
	if replay[len(replay)-1].Kind != "job.done" {
		t.Fatalf("last replayed event %+v, want job.done", replay[len(replay)-1])
	}
	// Seq gap is visible: first retained event's Seq > 1.
	if replay[0].Seq <= 1 {
		t.Fatalf("expected a visible gap, first seq = %d", replay[0].Seq)
	}
}
