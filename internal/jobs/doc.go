// Package jobs is the service's asynchronous job subsystem: a bounded
// priority queue in front of a fixed worker pool, with per-job contexts,
// timeouts and an ordered, subscribable progress-event stream.
//
// The design goals mirror what the HTTP surface needs. Admission control
// is explicit — Submit refuses work beyond the queue bound with
// ErrQueueFull, which the server turns into HTTP 429 backpressure
// instead of unbounded buffering. Progress is observable — Run functions
// stream engine events through Job.Publish, each job keeps a bounded
// replay ring so late subscribers catch up, and every stream ends with a
// terminal lifecycle event ("job.done", "job.failed", "job.canceled")
// followed by channel close, which is exactly the shape an SSE handler
// wants. Shutdown is orderly — Manager.Close stops intake, cancels
// queued and running jobs, and waits (bounded by a context) for workers
// to drain, so the server can finish its journal and compactor handshake
// after all job work has stopped.
//
// Finished jobs stay resolvable by ID up to a history limit, so clients
// can poll GET /v1/jobs/{id} for terminal states they missed.
package jobs
