package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversAllIndices checks every index runs exactly once, for
// serial and parallel widths, including clamping.
func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 100} {
		var mu sync.Mutex
		seen := make(map[int]int)
		fed, err := Run(context.Background(), 10, workers, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil || fed != 10 {
			t.Fatalf("workers=%d: fed=%d err=%v, want 10/nil", workers, fed, err)
		}
		for i := 0; i < 10; i++ {
			if seen[i] != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, seen[i])
			}
		}
	}
}

// TestRunEmpty checks the degenerate sizes.
func TestRunEmpty(t *testing.T) {
	for _, n := range []int{0, -5} {
		fed, err := Run(context.Background(), n, 4, func(int) error {
			t.Error("fn called for empty input")
			return nil
		})
		if fed != 0 || err != nil {
			t.Errorf("n=%d: fed=%d err=%v, want 0/nil", n, fed, err)
		}
	}
}

// TestRunErrorShortCircuits checks the first error stops the feed and is
// returned.
func TestRunErrorShortCircuits(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		fed, err := Run(context.Background(), 1000, workers, func(i int) error {
			calls.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want boom", workers, err)
		}
		if fed == 1000 || calls.Load() == 1000 {
			t.Errorf("workers=%d: fed=%d calls=%d — no short-circuit", workers, fed, calls.Load())
		}
	}
}

// TestRunCancellation checks a canceled context stops feeding without
// manufacturing an error, and a nil context never cancels.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	var fed int
	var err error
	go func() {
		defer close(done)
		fed, err = Run(ctx, 1000, 2, func(i int) error {
			once.Do(func() { close(started) })
			<-release
			return nil
		})
	}()
	<-started
	cancel()
	close(release)
	<-done
	if err != nil {
		t.Errorf("cancellation manufactured error %v", err)
	}
	if fed == 1000 {
		t.Error("cancellation did not stop the feed")
	}

	fedAll, err := Run(nil, 50, 4, func(int) error { return nil })
	if fedAll != 50 || err != nil {
		t.Errorf("nil ctx: fed=%d err=%v, want 50/nil", fedAll, err)
	}
}
