// Package pool is the one worker-pool implementation shared by the
// engine, the report suite and the cmd tools: feed indices [0, n) to a
// bounded set of workers in order, stop feeding on the first error or
// when the context is done, and report how far the feed got. Callers
// index into their own pre-sized result slices, so results come back in
// input order no matter how the pool interleaves.
//
// # Concurrency contract
//
// Run owns its worker goroutines completely: it returns only after every
// in-flight fn call has finished, so callers may treat the result slices
// fn wrote to as exclusively theirs again the moment Run returns. fn is
// called from multiple goroutines and must be safe for the caller's own
// shared state; indices are fed in increasing order and the fed count
// [0, fed) is always a contiguous prefix, which is what makes
// cancellation reporting ("stopped after k of n") meaningful.
package pool
