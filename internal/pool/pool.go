package pool

import (
	"context"
	"sync"
)

// Run calls fn(i) for i in [0, n) on up to `workers` goroutines.
// Indices are fed in increasing order; feeding stops at the first fn
// error or once ctx is done (a nil ctx never cancels). In-flight calls
// always finish. Run returns the number of indices fed — they form the
// contiguous prefix [0, fed) — and the first error. Workers below 1 are
// clamped to 1.
func Run(ctx context.Context, n, workers int, fn func(int) error) (fed int, err error) {
	if n <= 0 {
		return 0, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return i, nil
			default:
			}
			if err := fn(i); err != nil {
				return i + 1, err
			}
		}
		return n, nil
	}

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
		stop    = make(chan struct{})
		feed    = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range feed {
				if err := fn(i); err != nil {
					errOnce.Do(func() { first = err; close(stop) })
					return
				}
			}
		}()
	}
feeding:
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
			fed++
		case <-stop:
			break feeding
		case <-done:
			break feeding
		}
	}
	close(feed)
	wg.Wait()
	return fed, first
}
