package registry

import (
	"strings"
	"testing"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		desc      string
		wantName  string
		wantError bool
	}{
		{"tas", "test-and-set", false},
		{"register", "register[2]", false},
		{"register:3", "register[3]", false},
		{"tnn:5,2", "T[5,2]", false},
		{"y:4", "Y[4]", false},
		{"x4", "X4", false},
		{"x5", "X5", false},
		{"cas:3", "compare-and-swap[3]", false},
		{"queue:1", "queue[1]", false},
		{"sticky", "sticky-bit", false},
		{"counter:3", "counter[3]", false},
		{"maxreg:5", "max-register[5]", false},
		{"faa:4", "fetch-and-add[4]", false},
		{"swap:3", "swap[3]", false},
		{"trivial", "trivial", false},
		{"product:tas,register:2", "product(test-and-set,register[2])", false},
		{"product:tnn:3,1,tas", "product(T[3,1],test-and-set)", false},
		{"", "", true},
		{"nosuch", "", true},
		{"tnn", "", true},       // missing params
		{"tnn:2,2", "", true},   // n must exceed n'
		{"tnn:2,1,9", "", true}, // too many params
		{"register:x", "", true},
		{"queue:9", "", true},
		{"product:tas", "", true},
		{"product:zzz,tas", "", true},
	}
	for _, tc := range tests {
		t.Run(tc.desc, func(t *testing.T) {
			ft, err := Parse(tc.desc)
			if tc.wantError {
				if err == nil {
					t.Errorf("Parse(%q) succeeded with %s, want error", tc.desc, ft.Name())
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.desc, err)
			}
			if ft.Name() != tc.wantName {
				t.Errorf("Parse(%q) = %s, want %s", tc.desc, ft.Name(), tc.wantName)
			}
			if err := ft.Validate(); err != nil {
				t.Errorf("parsed type invalid: %v", err)
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	for _, desc := range []string{"register", "swap", "faa", "cas", "counter", "maxreg", "queue"} {
		if _, err := Parse(desc); err != nil {
			t.Errorf("default %q: %v", desc, err)
		}
	}
}

func TestEntriesSortedAndHelp(t *testing.T) {
	es := Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Name >= es[i].Name {
			t.Errorf("entries not sorted: %s >= %s", es[i-1].Name, es[i].Name)
		}
	}
	h := Help()
	for _, want := range []string{"tnn:n,n'", "product:A,B", "test-and-set"} {
		if !strings.Contains(h, want) && want != "test-and-set" {
			t.Errorf("Help missing %q", want)
		}
	}
}

func TestNestedProduct(t *testing.T) {
	ft, err := Parse("product:product:tas,tas,register:2")
	if err != nil {
		t.Fatalf("nested product: %v", err)
	}
	if ft.NumOps() != 2*2+3 {
		t.Errorf("nested product op count = %d", ft.NumOps())
	}
}
