// Package registry names the executable artifacts for command-line tools
// and the HTTP service: it parses compact descriptors into constructed
// values.
//
// Two registries live here:
//
//   - Types: descriptors such as "tas", "tnn:5,2", "cas:3",
//     "register:2" or "product:tas,register:2" resolve to
//     spec.FiniteType values (Parse, Names, Help).
//   - Protocols: descriptors such as "tnn-wf:3,2", "tnn-rec:3,2",
//     "cas-rec:2" or "tas-reg" resolve to model.Protocol values for the
//     model checker and /v1/check (ParseProtocol, ProtocolNames,
//     ProtocolHelp).
//
// Unknown names error with the full list of valid descriptors, so a typo
// at an API boundary is self-documenting.
//
// # Concurrency and stability
//
// The registries are static: parsing allocates a fresh value per call,
// never shares state between calls, and is safe for concurrent use.
// Descriptor strings are stable identifiers — they appear in HTTP
// requests, cache keys derived from the constructed types' structural
// fingerprints remain valid across processes, and renaming an entry is
// an API break.
package registry
