package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/spec"
	"repro/internal/types"
)

// Entry describes one registered type family.
type Entry struct {
	// Name is the descriptor prefix (e.g. "tnn").
	Name string
	// Usage documents the parameter syntax (e.g. "tnn:n,n'").
	Usage string
	// Help is a one-line description.
	Help string
	// Build constructs the type from the parsed integer parameters.
	Build func(args []int) (*spec.FiniteType, error)
	// MinArgs and MaxArgs bound the parameter count.
	MinArgs, MaxArgs int
}

// entries is the static registry.
var entries = []Entry{
	{
		Name: "register", Usage: "register[:k]", Help: "read/write register over k values (default 2); cons=1",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			k := 2
			if len(a) > 0 {
				k = a[0]
			}
			if k < 1 {
				return nil, fmt.Errorf("register: k must be >= 1")
			}
			return types.Register(k), nil
		},
	},
	{
		Name: "tas", Usage: "tas", Help: "test-and-set bit; cons=2, rcons=1 (Golab's gap)",
		MinArgs: 0, MaxArgs: 0,
		Build: func([]int) (*spec.FiniteType, error) { return types.TestAndSet(), nil },
	},
	{
		Name: "swap", Usage: "swap[:k]", Help: "swap object over k values (default 2); cons=2",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			k := 2
			if len(a) > 0 {
				k = a[0]
			}
			if k < 1 {
				return nil, fmt.Errorf("swap: k must be >= 1")
			}
			return types.Swap(k), nil
		},
	},
	{
		Name: "faa", Usage: "faa[:m]", Help: "fetch-and-add mod m (default 8); cons=2",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			m := 8
			if len(a) > 0 {
				m = a[0]
			}
			if m < 2 {
				return nil, fmt.Errorf("faa: modulus must be >= 2")
			}
			return types.FetchAdd(m), nil
		},
	},
	{
		Name: "cas", Usage: "cas[:k]", Help: "compare-and-swap over k proposals (default 2); cons=rcons=inf",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			k := 2
			if len(a) > 0 {
				k = a[0]
			}
			if k < 2 {
				return nil, fmt.Errorf("cas: k must be >= 2")
			}
			return types.CompareAndSwap(k), nil
		},
	},
	{
		Name: "sticky", Usage: "sticky", Help: "sticky bit; cons=rcons=inf",
		MinArgs: 0, MaxArgs: 0,
		Build: func([]int) (*spec.FiniteType, error) { return types.StickyBit(), nil },
	},
	{
		Name: "counter", Usage: "counter[:m]", Help: "bounded counter with blind increment; cons=1",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			m := 4
			if len(a) > 0 {
				m = a[0]
			}
			if m < 2 {
				return nil, fmt.Errorf("counter: bound must be >= 2")
			}
			return types.Counter(m), nil
		},
	},
	{
		Name: "maxreg", Usage: "maxreg[:m]", Help: "max-register over 0..m-1; cons=1",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			m := 4
			if len(a) > 0 {
				m = a[0]
			}
			if m < 2 {
				return nil, fmt.Errorf("maxreg: bound must be >= 2")
			}
			return types.MaxRegister(m), nil
		},
	},
	{
		Name: "queue", Usage: "queue[:cap]", Help: "bounded FIFO queue over {0,1} (default cap 2); cons=2",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			c := 2
			if len(a) > 0 {
				c = a[0]
			}
			if c < 1 || c > 4 {
				return nil, fmt.Errorf("queue: capacity must be in [1,4]")
			}
			return types.Queue(c), nil
		},
	},
	{
		Name: "peekqueue", Usage: "peekqueue[:cap]", Help: "queue with Peek (readable); cons=rcons=inf (Herlihy's augmented queue)",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			c := 2
			if len(a) > 0 {
				c = a[0]
			}
			if c < 1 || c > 4 {
				return nil, fmt.Errorf("peekqueue: capacity must be in [1,4]")
			}
			return types.PeekQueue(c), nil
		},
	},
	{
		Name: "stack", Usage: "stack[:cap]", Help: "bounded LIFO stack over {0,1}; cons=2",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			c := 2
			if len(a) > 0 {
				c = a[0]
			}
			if c < 1 || c > 4 {
				return nil, fmt.Errorf("stack: capacity must be in [1,4]")
			}
			return types.Stack(c), nil
		},
	},
	{
		Name: "tnn", Usage: "tnn:n,n'", Help: "the paper's T_{n,n'}; cons=n, rcons=n' (Section 4)",
		MinArgs: 2, MaxArgs: 2,
		Build: func(a []int) (*spec.FiniteType, error) {
			if a[0] <= a[1] || a[1] < 1 {
				return nil, fmt.Errorf("tnn: need n > n' >= 1")
			}
			return types.Tnn(a[0], a[1]), nil
		},
	},
	{
		Name: "y", Usage: "y:n", Help: "readable chain family Y_n; cons=n, rcons=n-1",
		MinArgs: 1, MaxArgs: 1,
		Build: func(a []int) (*spec.FiniteType, error) {
			if a[0] < 2 {
				return nil, fmt.Errorf("y: need n >= 2")
			}
			return types.TnnReadable(a[0]), nil
		},
	},
	{
		Name: "x4", Usage: "x4", Help: "readable type with cons=4, rcons=2 (paper's gap-2 corollary, n=4)",
		MinArgs: 0, MaxArgs: 0,
		Build: func([]int) (*spec.FiniteType, error) { return types.XFour(), nil },
	},
	{
		Name: "x5", Usage: "x5", Help: "readable type with cons=5, rcons=3 (paper's gap-2 corollary, n=5)",
		MinArgs: 0, MaxArgs: 0,
		Build: func([]int) (*spec.FiniteType, error) { return types.XFive(), nil },
	},
	{
		Name: "trivial", Usage: "trivial", Help: "one-value no-op type; cons=1",
		MinArgs: 0, MaxArgs: 0,
		Build: func([]int) (*spec.FiniteType, error) { return types.Trivial(), nil },
	},
}

// Names returns the registered descriptor names, sorted, including the
// structural "product" combinator.
func Names() []string {
	out := make([]string, 0, len(entries)+1)
	for _, e := range entries {
		out = append(out, e.Name)
	}
	out = append(out, "product")
	sort.Strings(out)
	return out
}

// Entries returns the registry sorted by name.
func Entries() []Entry {
	out := make([]Entry, len(entries))
	copy(out, entries)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Help renders a usage table of all registered descriptors.
func Help() string {
	var b strings.Builder
	for _, e := range Entries() {
		fmt.Fprintf(&b, "  %-14s %s\n", e.Usage, e.Help)
	}
	b.WriteString("  product:A,B    independent pair of two registered types\n")
	return b.String()
}

// Parse resolves a descriptor like "tnn:5,2", "tas" or
// "product:tas,register:2" into a type.
func Parse(desc string) (*spec.FiniteType, error) {
	desc = strings.TrimSpace(desc)
	if desc == "" {
		return nil, fmt.Errorf("empty type descriptor")
	}
	name, rest, hasArgs := strings.Cut(desc, ":")
	if name == "product" {
		if !hasArgs {
			return nil, fmt.Errorf("product needs two component descriptors: product:A,B")
		}
		left, right, err := splitProductArgs(rest)
		if err != nil {
			return nil, err
		}
		a, err := Parse(left)
		if err != nil {
			return nil, fmt.Errorf("product left component: %w", err)
		}
		b, err := Parse(right)
		if err != nil {
			return nil, fmt.Errorf("product right component: %w", err)
		}
		return types.Product(a, b), nil
	}
	for _, e := range entries {
		if e.Name != name {
			continue
		}
		var args []int
		if hasArgs && rest != "" {
			for _, part := range strings.Split(rest, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("%s: bad parameter %q", name, part)
				}
				args = append(args, v)
			}
		}
		if len(args) < e.MinArgs || len(args) > e.MaxArgs {
			return nil, fmt.Errorf("%s: want %d..%d parameters, got %d (usage: %s)",
				name, e.MinArgs, e.MaxArgs, len(args), e.Usage)
		}
		return e.Build(args)
	}
	return nil, fmt.Errorf("unknown type %q (valid names: %s)", name, strings.Join(Names(), ", "))
}

// splitProductArgs splits "A,B" at the top-level comma, where A and B may
// themselves contain commas inside their own parameter lists. The split
// point is the comma that leaves both sides parseable; the first comma
// that follows a complete descriptor wins. A descriptor is complete when
// its parameter count cannot grow (heuristic: try every comma position).
func splitProductArgs(rest string) (string, string, error) {
	idxs := []int{}
	for i, c := range rest {
		if c == ',' {
			idxs = append(idxs, i)
		}
	}
	for _, i := range idxs {
		left, right := rest[:i], rest[i+1:]
		if _, err := Parse(left); err != nil {
			continue
		}
		if _, err := Parse(right); err != nil {
			continue
		}
		return left, right, nil
	}
	return "", "", fmt.Errorf("cannot split product components in %q", rest)
}
