package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/proto"
)

// ProtocolEntry describes one registered consensus-protocol family,
// parallel to Entry for types.
type ProtocolEntry struct {
	// Name is the descriptor prefix (e.g. "tnn-wf").
	Name string
	// Usage documents the parameter syntax (e.g. "tnn-wf:n,n'[,procs]").
	Usage string
	// Help is a one-line description.
	Help string
	// Build constructs the protocol from the parsed integer parameters.
	Build func(args []int) (model.Protocol, error)
	// MinArgs and MaxArgs bound the parameter count.
	MinArgs, MaxArgs int
}

// protocolEntries is the static protocol registry: the paper's T_{n,n'}
// algorithms, the CAS baselines and Golab's TAS+registers separation.
var protocolEntries = []ProtocolEntry{
	{
		Name: "tnn-wf", Usage: "tnn-wf:n,n'[,procs]",
		Help:    "the paper's wait-free consensus from one T_{n,n'} object (procs defaults to n)",
		MinArgs: 2, MaxArgs: 3,
		Build: func(a []int) (model.Protocol, error) {
			n, nPrime := a[0], a[1]
			if n <= nPrime || nPrime < 1 {
				return nil, fmt.Errorf("tnn-wf: need n > n' >= 1")
			}
			procs := n
			if len(a) > 2 {
				procs = a[2]
			}
			if procs < 1 {
				return nil, fmt.Errorf("tnn-wf: need procs >= 1")
			}
			return proto.NewTnnWaitFree(n, nPrime, procs), nil
		},
	},
	{
		Name: "tnn-rec", Usage: "tnn-rec:n,n'[,procs]",
		Help:    "the paper's recoverable consensus from one T_{n,n'} object (procs defaults to n')",
		MinArgs: 2, MaxArgs: 3,
		Build: func(a []int) (model.Protocol, error) {
			n, nPrime := a[0], a[1]
			if n <= nPrime || nPrime < 1 {
				return nil, fmt.Errorf("tnn-rec: need n > n' >= 1")
			}
			procs := nPrime
			if len(a) > 2 {
				procs = a[2]
			}
			if procs < 1 {
				return nil, fmt.Errorf("tnn-rec: need procs >= 1")
			}
			return proto.NewTnnRecoverable(n, nPrime, procs), nil
		},
	},
	{
		Name: "cas-wf", Usage: "cas-wf[:procs]",
		Help:    "wait-free consensus from compare-and-swap (default 2 processes)",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (model.Protocol, error) {
			procs := 2
			if len(a) > 0 {
				procs = a[0]
			}
			if procs < 1 {
				return nil, fmt.Errorf("cas-wf: need procs >= 1")
			}
			return proto.NewCASWaitFree(procs), nil
		},
	},
	{
		Name: "cas-rec", Usage: "cas-rec[:procs]",
		Help:    "recoverable consensus from compare-and-swap (default 2 processes)",
		MinArgs: 0, MaxArgs: 1,
		Build: func(a []int) (model.Protocol, error) {
			procs := 2
			if len(a) > 0 {
				procs = a[0]
			}
			if procs < 1 {
				return nil, fmt.Errorf("cas-rec: need procs >= 1")
			}
			return proto.NewCASRecoverable(procs), nil
		},
	},
	{
		Name: "tas-reg", Usage: "tas-reg",
		Help:    "classic 2-process consensus from TAS + registers (fails under crashes: Golab's separation)",
		MinArgs: 0, MaxArgs: 0,
		Build: func([]int) (model.Protocol, error) { return proto.NewTASConsensus(), nil },
	},
}

// ProtocolNames returns the registered protocol descriptor names, sorted.
func ProtocolNames() []string {
	out := make([]string, 0, len(protocolEntries))
	for _, e := range protocolEntries {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// ProtocolEntries returns the protocol registry sorted by name.
func ProtocolEntries() []ProtocolEntry {
	out := make([]ProtocolEntry, len(protocolEntries))
	copy(out, protocolEntries)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProtocolHelp renders a usage table of all registered protocols.
func ProtocolHelp() string {
	var b strings.Builder
	for _, e := range ProtocolEntries() {
		fmt.Fprintf(&b, "  %-22s %s\n", e.Usage, e.Help)
	}
	return b.String()
}

// ParseProtocol resolves a descriptor like "tnn-wf:3,2" or "cas-rec:3"
// into a model-checkable consensus protocol. Unknown names error with
// the list of valid descriptors.
func ParseProtocol(desc string) (model.Protocol, error) {
	desc = strings.TrimSpace(desc)
	if desc == "" {
		return nil, fmt.Errorf("empty protocol descriptor")
	}
	name, rest, hasArgs := strings.Cut(desc, ":")
	for _, e := range protocolEntries {
		if e.Name != name {
			continue
		}
		var args []int
		if hasArgs && rest != "" {
			for _, part := range strings.Split(rest, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("%s: bad parameter %q", name, part)
				}
				args = append(args, v)
			}
		}
		if len(args) < e.MinArgs || len(args) > e.MaxArgs {
			return nil, fmt.Errorf("%s: want %d..%d parameters, got %d (usage: %s)",
				name, e.MinArgs, e.MaxArgs, len(args), e.Usage)
		}
		return e.Build(args)
	}
	return nil, fmt.Errorf("unknown protocol %q (valid names: %s)",
		name, strings.Join(ProtocolNames(), ", "))
}
