package xsearch

import (
	"testing"

	"repro/internal/types"
)

// TestMinimizePreservesSignature: whatever Minimize returns for X4 must
// still carry the X_4 signature.
func TestMinimizePreservesSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization re-runs the deciders many times")
	}
	out := Minimize(types.XFour(), 4)
	if !HasXSignature(out, 4) {
		t.Fatal("minimized type lost the signature")
	}
	if out.NumValues() > types.XFour().NumValues() {
		t.Errorf("minimize grew the type: %d values", out.NumValues())
	}
	t.Logf("X4 minimized from %d to %d values", types.XFour().NumValues(), out.NumValues())
}

// TestDeleteValueStructure checks the rerouting helper directly.
func TestDeleteValueStructure(t *testing.T) {
	ft := types.XFour()
	cand, err := deleteValue(ft, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cand.NumValues() != ft.NumValues()-1 {
		t.Errorf("deleted type has %d values", cand.NumValues())
	}
	if err := cand.Validate(); err != nil {
		t.Errorf("deleted type invalid: %v", err)
	}
	if !cand.Readable() {
		t.Error("deleted type lost readability")
	}
}

// TestMinimizeTrivialStops: minimizing a 2-value type returns it
// unchanged (nothing can be removed).
func TestMinimizeTrivialStops(t *testing.T) {
	ft := types.TestAndSet()
	// TAS does not have the X signature; Minimize still terminates by
	// returning the input once no shrink preserves the (absent)
	// signature... guard: Minimize assumes input HAS the signature; for
	// this test we only check termination and non-growth.
	out := Minimize(ft, 4)
	if out.NumValues() > ft.NumValues() {
		t.Error("minimize grew a type")
	}
}
