// Package xsearch hunts for readable deterministic types with the
// discerning/recording signature of DFFR's X_4: 4-discerning, 2-recording
// and not 3-recording.
//
// Such a type has consensus number exactly 4 and recoverable consensus
// number exactly 2 (gap 2), because:
//
//   - 4-discerning gives cons >= 4 (Ruppert, readable);
//   - NOT 3-recording gives cons <= 4: by DFFR's Theorem 5 any readable
//     deterministic type with consensus number n >= 4 is (n-2)-recording,
//     so cons >= 5 would force 3-recording;
//   - 2-recording and not 3-recording give rcons = 2 exactly by the
//     paper's Theorem 14.
//
// The definition of X_n itself appears in DFFR (PODC 2022), not in the
// paper reproduced here, so this package searches for an instance instead
// of transcribing one: it samples random transition tables over a small
// value set with two mutating operations and a Read, with maximally
// informative responses (every (value, op) pair returns a distinct
// response, which is the best case for discerning and irrelevant to
// recording).
//
// # Concurrency and reproducibility
//
// Sampling is seeded: a given seed deterministically produces the same
// candidate sequence, so a reported hit is reproducible by seed. The
// engine-driven deciders (SearchDecider, HasXSignatureDecider) may run
// candidates' signature checks sharded across a worker pool without
// changing any verdict, and SearchCtx honors context cancellation
// between candidates.
package xsearch
