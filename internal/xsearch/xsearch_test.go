package xsearch

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

type (
	specValue = spec.Value
	specOp    = spec.Op
)

// TestFrozenSeedReproduces checks that the frozen XFour type in
// internal/types matches the sampled candidate it was extracted from, so
// the provenance documented in its constructor stays accurate.
func TestFrozenSeedReproduces(t *testing.T) {
	sampled := Sample(1994, 5)
	frozen := types.XFour()
	if sampled.NumValues() != frozen.NumValues() || sampled.NumOps() != frozen.NumOps() {
		t.Fatalf("shape mismatch: sampled %dx%d vs frozen %dx%d",
			sampled.NumValues(), sampled.NumOps(), frozen.NumValues(), frozen.NumOps())
	}
	for v := 0; v < sampled.NumValues(); v++ {
		for o := 0; o < sampled.NumOps(); o++ {
			if sampled.Apply(spec2(v), op2(o)) != frozen.Apply(spec2(v), op2(o)) {
				t.Errorf("transition (%d,%d) differs between sampled and frozen", v, o)
			}
		}
	}
}

// TestXFourHasSignature re-verifies the frozen type's signature through
// the search predicate.
func TestXFourHasSignature(t *testing.T) {
	if !HasX4Signature(types.XFour()) {
		t.Error("frozen XFour lost the X_4 signature")
	}
	if !HasXSignature(types.XFour(), 4) {
		t.Error("generalized signature check disagrees")
	}
}

// TestNegativeSignatures checks the predicate rejects types that fail each
// leg of the signature.
func TestNegativeSignatures(t *testing.T) {
	if HasX4Signature(types.Queue(2)) {
		t.Error("non-readable queue must be rejected")
	}
	if HasX4Signature(types.CompareAndSwap(2)) {
		t.Error("CAS is 3-recording, must be rejected")
	}
	if HasX4Signature(types.TestAndSet()) {
		t.Error("TAS is not 2-recording, must be rejected")
	}
	if HasX4Signature(types.Register(3)) {
		t.Error("registers are not 4-discerning, must be rejected")
	}
}

func TestSignaturePanicsBelow4(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=3")
		}
	}()
	HasXSignature(types.XFour(), 3)
}

// TestSearchFindsFrozenSeed runs the seed window that contains the frozen
// candidate and checks the search rediscovers it.
func TestSearchFindsFrozenSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("search is a few seconds")
	}
	found := Search(4, 1990, 10, []int{5}, 0, nil)
	ok := false
	for _, c := range found {
		if c.Seed == 1994 && c.NumValues == 5 {
			ok = true
		}
	}
	if !ok {
		t.Error("search over seeds [1990,2000) did not rediscover seed 1994")
	}
}

// spec2/op2 are tiny readability helpers for index conversions.
func spec2(v int) (out specValue) { return specValue(v) }
func op2(o int) (out specOp)      { return specOp(o) }
