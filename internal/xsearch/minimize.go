package xsearch

import (
	"fmt"

	"repro/internal/spec"
)

// Minimize tries to shrink a type that has the X_n signature while
// preserving the signature, by repeatedly redirecting transitions to
// collapse a value out of the reachable set and dropping it. It returns a
// (possibly) smaller type with the same signature; if no value can be
// removed, the input is returned unchanged.
//
// The procedure is greedy and value-at-a-time: for each value v, build
// the candidate type with v deleted and every transition into v rerouted
// to each other value w in turn; the first candidate that still has the
// signature replaces the current type. This is a test-time tool (used to
// look for smaller X_4 instances); it makes no optimality claim.
func Minimize(t *spec.FiniteType, n int) *spec.FiniteType {
	cur := t
	for {
		next := shrinkOnce(cur, n)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// shrinkOnce removes one value if possible.
func shrinkOnce(t *spec.FiniteType, n int) *spec.FiniteType {
	nv := t.NumValues()
	if nv <= 2 {
		return nil
	}
	for victim := 0; victim < nv; victim++ {
		for target := 0; target < nv; target++ {
			if target == victim {
				continue
			}
			cand, err := deleteValue(t, spec.Value(victim), spec.Value(target))
			if err != nil {
				continue
			}
			if HasXSignature(cand, n) {
				return cand
			}
		}
	}
	return nil
}

// deleteValue builds a copy of t without the victim value; transitions
// that led to victim lead to target instead. Mutating-op responses are
// renumbered to stay distinct per (value, op); read responses are
// regenerated.
func deleteValue(t *spec.FiniteType, victim, target spec.Value) (*spec.FiniteType, error) {
	b := spec.NewBuilder(fmt.Sprintf("%s-minus-%s", t.Name(), t.ValueName(victim)))
	var names []string
	oldToNew := make(map[spec.Value]string)
	for v := 0; v < t.NumValues(); v++ {
		if spec.Value(v) == victim {
			continue
		}
		name := t.ValueName(spec.Value(v))
		names = append(names, name)
		oldToNew[spec.Value(v)] = name
	}
	b.Values(names...)

	var readOp spec.Op = -1
	for o := 0; o < t.NumOps(); o++ {
		if t.IsReadOp(spec.Op(o)) && readOp < 0 {
			readOp = spec.Op(o)
			continue
		}
		b.Ops(t.OpName(spec.Op(o)))
	}
	resp := spec.Response(0)
	for v := 0; v < t.NumValues(); v++ {
		if spec.Value(v) == victim {
			continue
		}
		for o := 0; o < t.NumOps(); o++ {
			if spec.Op(o) == readOp {
				continue
			}
			e := t.Apply(spec.Value(v), spec.Op(o))
			dest := e.Next
			if dest == victim {
				dest = target
			}
			b.Transition(oldToNew[spec.Value(v)], t.OpName(spec.Op(o)), resp, oldToNew[dest])
			resp++
		}
	}
	if readOp >= 0 {
		b.Ops("read")
		b.ReadOp("read", 2000)
	}
	return b.Build()
}
