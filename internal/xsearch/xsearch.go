package xsearch

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/discern"
	"repro/internal/record"
	"repro/internal/spec"
)

// Candidate is one sampled type together with its verified signature.
type Candidate struct {
	Type *spec.FiniteType
	// Seed reproduces the candidate via Sample(seed, numValues).
	Seed      int64
	NumValues int
}

// Sample deterministically generates a candidate type from a seed: two
// mutating operations with random transitions over numValues values, plus
// a Read. Response codes are distinct per (value, op), which is the most
// favourable response structure for discerning.
func Sample(seed int64, numValues int) *spec.FiniteType {
	rng := rand.New(rand.NewSource(seed))
	b := spec.NewBuilder(fmt.Sprintf("x4-candidate[%d,%d]", numValues, seed))
	names := make([]string, numValues)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	b.Values(names...)
	b.Ops("a", "b", "read")
	resp := spec.Response(0)
	for v := 0; v < numValues; v++ {
		for _, op := range []string{"a", "b"} {
			next := names[rng.Intn(numValues)]
			b.Transition(names[v], op, resp, next)
			resp++
		}
	}
	// Read responses use the same base as the type zoo (types.RespReadBase)
	// so frozen candidates can be compared transition-for-transition.
	b.ReadOp("read", 2000)
	return b.MustBuild()
}

// HasXSignature checks the X_n signature on t: readable, (n-2)-recording,
// not (n-1)-recording, n-discerning. For a readable deterministic type
// this pins both hierarchy positions exactly: cons = n (Ruppert plus DFFR
// Theorem 5) and rcons = n-2 (the paper's Theorem 14). The checks are
// ordered cheapest-first. n must be at least 4.
func HasXSignature(t *spec.FiniteType, n int) bool {
	ok, _ := HasXSignatureShardedCtx(context.Background(), t, n, 1)
	return ok
}

// HasXSignatureShardedCtx is HasXSignature with cancellation and with the
// two dominant level checks — (n-1)-recording and n-discerning — sharded
// across `shards` workers (see discern.ShardedIsNDiscerning). The cheap
// (n-2)-recording pre-filter stays serial. Sharding never changes the
// verdict, only the core count one candidate occupies.
func HasXSignatureShardedCtx(ctx context.Context, t *spec.FiniteType, n, shards int) (bool, error) {
	if n < 4 {
		panic(fmt.Sprintf("xsearch: X_n signature needs n >= 4, got %d", n))
	}
	if !t.Readable() {
		return false, nil
	}
	if ok, _, err := record.ShardedIsNRecording(ctx, t, n-1, shards, record.ShardOptions{}); err != nil || ok {
		return false, err
	}
	if ok, _, err := record.IsNRecordingCtx(ctx, t, n-2, record.Options{}); err != nil || !ok {
		return false, err
	}
	ok, _, err := discern.ShardedIsNDiscerning(ctx, t, n, shards, discern.ShardOptions{})
	return ok, err
}

// HasX4Signature checks the X_4 signature (see HasXSignature).
func HasX4Signature(t *spec.FiniteType) bool { return HasXSignature(t, 4) }

// LevelDecider is the slice of the analysis engine's API the signature
// check needs: decide one level of one property, however the
// implementation wants to (memoized, sharded, persistent).
// *engine.Engine satisfies it.
type LevelDecider interface {
	Discerning(t *spec.FiniteType, n int) (bool, *discern.Witness, error)
	Recording(t *spec.FiniteType, n int) (bool, *record.Witness, error)
}

// HasXSignatureDecider is HasXSignature with every level check routed
// through d. Driven by an engine, the checks are cached by type
// fingerprint — a re-run over the same seeds (for instance resuming an
// interrupted sweep against a persistent -cache-file) skips straight
// through already-decided candidates — and large enumerations shard
// across the engine's idle workers automatically. The check order stays
// cheapest-first; cancellation arrives via d's own context as an error.
func HasXSignatureDecider(d LevelDecider, t *spec.FiniteType, n int) (bool, error) {
	if n < 4 {
		panic(fmt.Sprintf("xsearch: X_n signature needs n >= 4, got %d", n))
	}
	if !t.Readable() {
		return false, nil
	}
	if ok, _, err := d.Recording(t, n-1); err != nil || ok {
		return false, err
	}
	if ok, _, err := d.Recording(t, n-2); err != nil || !ok {
		return false, err
	}
	ok, _, err := d.Discerning(t, n)
	return ok, err
}

// SearchDecider is SearchCtx with each candidate's signature checks
// routed through d (see HasXSignatureDecider). The context is polled
// once per attempt; d is additionally expected to honor its own context
// mid-check, as an engine does.
func SearchDecider(ctx context.Context, d LevelDecider, n int, seedStart int64, attempts int, sizes []int, progressEvery int, progress func(done int)) []Candidate {
	return searchWith(ctx, func(t *spec.FiniteType) (bool, error) {
		return HasXSignatureDecider(d, t, n)
	}, seedStart, attempts, sizes, progressEvery, progress)
}

// Search samples candidates with seeds [seedStart, seedStart+attempts) and
// value-set sizes in sizes, returning every candidate with the X_n
// signature (possibly none). progress, if non-nil, is called every
// progressEvery attempts with the attempt count.
func Search(n int, seedStart int64, attempts int, sizes []int, progressEvery int, progress func(done int)) []Candidate {
	return SearchCtx(context.Background(), n, seedStart, attempts, sizes, progressEvery, progress)
}

// SearchCtx is Search with cancellation: the context is polled once per
// attempt, and the candidates found so far are returned when it fires.
func SearchCtx(ctx context.Context, n int, seedStart int64, attempts int, sizes []int, progressEvery int, progress func(done int)) []Candidate {
	return SearchShardedCtx(ctx, n, seedStart, attempts, sizes, 1, progressEvery, progress)
}

// SearchShardedCtx is SearchCtx with each candidate's dominant signature
// checks sharded across `shards` workers (1 = serial, the SearchCtx
// behavior). Use it when the sweep has fewer independent sample spaces
// than workers, so the spare cores ride along inside each check instead
// of idling.
func SearchShardedCtx(ctx context.Context, n int, seedStart int64, attempts int, sizes []int, shards, progressEvery int, progress func(done int)) []Candidate {
	return searchWith(ctx, func(t *spec.FiniteType) (bool, error) {
		return HasXSignatureShardedCtx(ctx, t, n, shards)
	}, seedStart, attempts, sizes, progressEvery, progress)
}

// searchWith is the one sweep loop behind every Search variant: sample
// seeds [seedStart, seedStart+attempts) at each size, keep candidates
// the check accepts, poll ctx once per attempt, and return the partial
// result when ctx fires or the check errors (a canceled mid-check).
func searchWith(ctx context.Context, check func(*spec.FiniteType) (bool, error), seedStart int64, attempts int, sizes []int, progressEvery int, progress func(done int)) []Candidate {
	var found []Candidate
	cdone := ctx.Done()
	done := 0
	for i := 0; i < attempts; i++ {
		select {
		case <-cdone:
			return found
		default:
		}
		for _, sz := range sizes {
			t := Sample(seedStart+int64(i), sz)
			ok, err := check(t)
			if err != nil {
				return found // canceled mid-check; report what we have
			}
			if ok {
				found = append(found, Candidate{Type: t, Seed: seedStart + int64(i), NumValues: sz})
			}
		}
		done++
		if progress != nil && progressEvery > 0 && done%progressEvery == 0 {
			progress(done)
		}
	}
	return found
}
