package repro_test

import (
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

// ExampleNew builds an engine, resolves a type by registry descriptor
// and computes its consensus / recoverable consensus numbers.
func ExampleNew() {
	eng := repro.New(
		repro.WithParallelism(2),
		repro.WithMaxN(3),
	)
	t, err := eng.Resolve("tas")
	if err != nil {
		fmt.Println(err)
		return
	}
	a, err := eng.Analyze(t)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(a.Summary())
	// Output:
	// test-and-set: cons=2 rcons=1 [exact (readable)]
}

// ExampleOpenCache persists level decisions across engines: the second
// open warm-loads what the first computed, so nothing is re-decided.
func ExampleOpenCache() {
	dir, err := os.MkdirTemp("", "repro-cache")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "decisions.repro")

	// First process: compute and persist.
	pc, err := repro.OpenCache(path)
	if err != nil {
		fmt.Println(err)
		return
	}
	eng := repro.New(repro.WithCache(pc.Cache()), repro.WithMaxN(3))
	t, _ := eng.Resolve("tas")
	if _, err := eng.Analyze(t); err != nil {
		fmt.Println(err)
		return
	}
	if err := pc.Close(); err != nil { // flush the journal
		fmt.Println(err)
		return
	}

	// Second process: every prior decision is served warm.
	pc2, err := repro.OpenCache(path)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer pc2.Close()
	fmt.Println("warm-loaded decisions:", pc2.Stats().Loaded)
	// Output:
	// warm-loaded decisions: 4
}

// ExampleEngine_Check model-checks a single protocol configuration:
// wait-free consensus from compare-and-swap, crash-free.
func ExampleEngine_Check() {
	eng := repro.New()
	p, err := repro.ResolveProtocol("cas-wf:2")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := eng.Check(p, repro.CheckRequest{Inputs: []int{0, 1}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ok:", res.OK(), "nodes:", res.Nodes)
	// Output:
	// ok: true nodes: 5
}

// ExampleEngine_CheckBatch model-checks many requests over one shared
// exploration graph: the two identical crash-budgeted requests — and the
// crash-free prefix of the first — are expanded once and reused, which
// the graph statistics prove.
func ExampleEngine_CheckBatch() {
	eng := repro.New()
	p, err := repro.ResolveProtocol("cas-rec:2")
	if err != nil {
		fmt.Println(err)
		return
	}
	items, gs, err := eng.CheckBatch(p, []repro.CheckRequest{
		{Inputs: []int{0, 1}},                          // crash-free
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}}, // one crash each
		{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}}, // identical twin
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, it := range items {
		if it.Err != nil {
			fmt.Println("item", i, "error:", it.Err)
			continue
		}
		fmt.Println("item", i, "ok:", it.OK(), "nodes:", it.Result.Nodes)
	}
	fmt.Println("graph expanded:", gs.Expanded, "reused:", gs.Reused)
	// Output:
	// item 0 ok: true nodes: 10
	// item 1 ok: true nodes: 58
	// item 2 ok: true nodes: 58
	// graph expanded: 20 reused: 106
}
