package repro

import (
	"testing"

	"repro/internal/proto"
)

// facadeProtocol returns a small recoverable protocol for facade tests.
func facadeProtocol() Protocol { return proto.NewCASRecoverable(2) }

// TestFacadeAnalyze exercises the re-exported analysis path end to end.
func TestFacadeAnalyze(t *testing.T) {
	a, err := Analyze(TestAndSet(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConsensusNumber != 2 || a.RecoverableConsensusNumber != 1 {
		t.Errorf("TAS analysis: cons=%d rcons=%d, want 2/1",
			a.ConsensusNumber, a.RecoverableConsensusNumber)
	}
}

// TestFacadeDeciders exercises the re-exported deciders.
func TestFacadeDeciders(t *testing.T) {
	if ok, w := IsNDiscerning(TestAndSet(), 2); !ok || w == nil {
		t.Error("TAS should be 2-discerning with a witness")
	}
	if ok, _ := IsNRecording(TestAndSet(), 2); ok {
		t.Error("TAS should not be 2-recording")
	}
}

// TestFacadeCustomType builds a type through the facade builder and
// analyzes it.
func TestFacadeCustomType(t *testing.T) {
	b := NewType("mini-sticky")
	b.Values("bot", "0", "1")
	b.Ops("set0", "set1", "read")
	b.Transition("bot", "set0", 0, "0")
	b.Transition("bot", "set1", 1, "1")
	for _, v := range []string{"0", "1"} {
		r := 0
		if v == "1" {
			r = 1
		}
		b.Transition(v, "set0", Response(r), v)
		b.Transition(v, "set1", Response(r), v)
	}
	b.ReadOp("read", 100)
	ft, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(ft, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConsensusNumber != Unbounded {
		t.Errorf("sticky bit should be unbounded at maxN=4, got %d", a.ConsensusNumber)
	}
}

// TestFacadeModelChecking drives the checker and the Theorem 13 chain
// through the facade.
func TestFacadeModelChecking(t *testing.T) {
	pr := facadeProtocol()
	res, err := CheckProtocol(pr, []int{0, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("CAS recoverable should check clean: %v", res.Violations)
	}
	if _, err := FindCritical(res); err != nil {
		t.Fatalf("FindCritical: %v", err)
	}
	chain, err := Theorem13Chain(pr, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Recording {
		t.Error("chain should reach an n-recording configuration")
	}
}

// TestFacadeZoo spot-checks the re-exported constructors.
func TestFacadeZoo(t *testing.T) {
	for name, ft := range map[string]*Type{
		"tnn":    Tnn(4, 2),
		"y4":     TnnReadable(4),
		"x4":     XFour(),
		"x5":     XFive(),
		"reg":    Register(2),
		"swap":   Swap(2),
		"faa":    FetchAdd(3),
		"cas":    CompareAndSwap(2),
		"sticky": StickyBit(),
		"queue":  Queue(2),
		"cnt":    Counter(3),
		"maxreg": MaxRegister(3),
		"prod":   Product(TestAndSet(), Register(2)),
	} {
		if err := ft.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
