package repro

import (
	"strings"
	"testing"

	"repro/internal/proto"
)

// facadeProtocol returns a small recoverable protocol for facade tests.
func facadeProtocol() Protocol { return proto.NewCASRecoverable(2) }

// TestFacadeAnalyze exercises the re-exported analysis path end to end.
func TestFacadeAnalyze(t *testing.T) {
	a, err := Analyze(TestAndSet(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConsensusNumber != 2 || a.RecoverableConsensusNumber != 1 {
		t.Errorf("TAS analysis: cons=%d rcons=%d, want 2/1",
			a.ConsensusNumber, a.RecoverableConsensusNumber)
	}
}

// TestFacadeDeciders exercises the re-exported deciders.
func TestFacadeDeciders(t *testing.T) {
	if ok, w := IsNDiscerning(TestAndSet(), 2); !ok || w == nil {
		t.Error("TAS should be 2-discerning with a witness")
	}
	if ok, _ := IsNRecording(TestAndSet(), 2); ok {
		t.Error("TAS should not be 2-recording")
	}
}

// TestFacadeCustomType builds a type through the facade builder and
// analyzes it.
func TestFacadeCustomType(t *testing.T) {
	b := NewType("mini-sticky")
	b.Values("bot", "0", "1")
	b.Ops("set0", "set1", "read")
	b.Transition("bot", "set0", 0, "0")
	b.Transition("bot", "set1", 1, "1")
	for _, v := range []string{"0", "1"} {
		r := 0
		if v == "1" {
			r = 1
		}
		b.Transition(v, "set0", Response(r), v)
		b.Transition(v, "set1", Response(r), v)
	}
	b.ReadOp("read", 100)
	ft, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(ft, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConsensusNumber != Unbounded {
		t.Errorf("sticky bit should be unbounded at maxN=4, got %d", a.ConsensusNumber)
	}
}

// TestFacadeModelChecking drives the checker and the Theorem 13 chain
// through the facade.
func TestFacadeModelChecking(t *testing.T) {
	pr := facadeProtocol()
	res, err := CheckProtocol(pr, []int{0, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("CAS recoverable should check clean: %v", res.Violations)
	}
	if _, err := FindCritical(res); err != nil {
		t.Fatalf("FindCritical: %v", err)
	}
	chain, err := Theorem13Chain(pr, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Recording {
		t.Error("chain should reach an n-recording configuration")
	}
}

// TestFacadeEngine drives the option-driven Engine API end to end
// through the public facade: options, Resolve, Analyze vs the deprecated
// serial wrapper, Check and Theorem13.
func TestFacadeEngine(t *testing.T) {
	var events []Event
	eng := New(
		WithParallelism(2),
		WithMaxN(4),
		WithCache(NewCache()),
		WithProgress(func(ev Event) { events = append(events, ev) }),
	)
	ft, err := eng.Resolve("tnn:4,2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Analyze(ft)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(Tnn(4, 2), 4) // deprecated serial path
	if err != nil {
		t.Fatal(err)
	}
	if got.ConsensusNumber != want.ConsensusNumber ||
		got.RecoverableConsensusNumber != want.RecoverableConsensusNumber {
		t.Errorf("engine cons/rcons = %d/%d, serial facade %d/%d",
			got.ConsensusNumber, got.RecoverableConsensusNumber,
			want.ConsensusNumber, want.RecoverableConsensusNumber)
	}
	if len(events) == 0 {
		t.Error("no progress events emitted")
	}

	res, err := eng.Check(facadeProtocol(), CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("engine Check: %v", res.Violations)
	}
	chain, err := eng.Theorem13(facadeProtocol(), CheckRequest{Inputs: []int{0, 1}, CrashQuota: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Recording {
		t.Error("engine Theorem13 chain should reach n-recording")
	}
}

// TestFacadeResolveErrorListsNames pins the registry error contract at
// the facade level.
func TestFacadeResolveErrorListsNames(t *testing.T) {
	_, err := Resolve("zzz")
	if err == nil {
		t.Fatal("unknown descriptor should fail")
	}
	for _, name := range []string{"tas", "x5", "trivial"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error should list %q: %v", name, err)
		}
	}
	if _, err := Resolve("trivial"); err != nil {
		t.Errorf("trivial should resolve (facade exports Trivial too): %v", err)
	}
}

// TestFacadeZoo spot-checks the re-exported constructors.
func TestFacadeZoo(t *testing.T) {
	for name, ft := range map[string]*Type{
		"tnn":    Tnn(4, 2),
		"y4":     TnnReadable(4),
		"x4":     XFour(),
		"x5":     XFive(),
		"reg":    Register(2),
		"swap":   Swap(2),
		"faa":    FetchAdd(3),
		"cas":    CompareAndSwap(2),
		"sticky": StickyBit(),
		"queue":  Queue(2),
		"cnt":    Counter(3),
		"maxreg": MaxRegister(3),
		"prod":   Product(TestAndSet(), Register(2)),
		"triv":   Trivial(),
		"stack":  Stack(2),
		"peekq":  PeekQueue(2),
	} {
		if err := ft.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
